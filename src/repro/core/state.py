"""Node states of the paper's state transition graph (Figure 4).

Figure 4 classifies a node by three orthogonal facts — whether it holds the
token, whether it is in (or waiting for) its critical section, and whether it
has captured a subsequent request in ``FOLLOW`` — into six named states:

===== =============================================================
State Meaning
===== =============================================================
``N``   not requesting, not holding the token
``R``   requesting, no subsequent request received
``RF``  requesting, a subsequent request captured in ``FOLLOW``
``E``   executing in the critical section, no subsequent request
``EF``  executing in the critical section, subsequent request captured
``H``   holding the token idle, no requests received
===== =============================================================

The classification function below maps a node's concrete variables onto these
names; tests assert that every transition the implementation takes corresponds
to an arc of Figure 4.
"""

from __future__ import annotations

import enum
from typing import Optional


class NodeStateName(enum.Enum):
    """Symbolic node states from Figure 4 of the paper."""

    NOT_REQUESTING = "N"
    REQUESTING = "R"
    REQUESTING_FOLLOW = "RF"
    EXECUTING = "E"
    EXECUTING_FOLLOW = "EF"
    HOLDING_IDLE = "H"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def classify_state(
    *,
    holding: bool,
    in_critical_section: bool,
    requesting: bool,
    follow: Optional[int],
) -> NodeStateName:
    """Classify a node's variables into one of the six Figure 4 states.

    Args:
        holding: the node's ``HOLDING`` flag (token held but idle).
        in_critical_section: the node is currently executing its critical
            section.
        requesting: the node has an outstanding request and is waiting for the
            PRIVILEGE message.
        follow: the node's ``FOLLOW`` variable (``None`` when it is 0).

    Returns:
        The matching :class:`NodeStateName`.

    Raises:
        ValueError: for variable combinations the protocol can never reach
            (e.g. holding the token idle while also waiting for it).
    """
    if in_critical_section:
        if holding or requesting:
            raise ValueError(
                "a node in its critical section cannot simultaneously be idle-holding "
                "or still waiting for the token"
            )
        return NodeStateName.EXECUTING_FOLLOW if follow is not None else NodeStateName.EXECUTING

    if holding:
        if requesting:
            raise ValueError("a node holding the token idle cannot also be requesting")
        if follow is not None:
            raise ValueError(
                "a node holding the token idle must have an empty FOLLOW variable; "
                "a captured request would have taken the token immediately (transition 8)"
            )
        return NodeStateName.HOLDING_IDLE

    if requesting:
        return (
            NodeStateName.REQUESTING_FOLLOW if follow is not None else NodeStateName.REQUESTING
        )

    if follow is not None:
        raise ValueError(
            "a node that is neither requesting nor in its critical section cannot hold "
            "a FOLLOW pointer: FOLLOW is cleared when the token is passed on"
        )
    return NodeStateName.NOT_REQUESTING
