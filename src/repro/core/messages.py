"""Protocol messages of the DAG-based algorithm.

The paper uses exactly two messages during normal operation:

* ``REQUEST(X, Y)`` — ``X`` is the adjacent node the message arrives from and
  ``Y`` is the node that originated the request (Chapter 4).  The sender field
  ``X`` is carried explicitly here (even though the network also knows it) so
  the message is self-contained, matching the paper's formulation.
* ``PRIVILEGE`` — the token.  It deliberately carries **no** payload; Section
  6.4's storage-overhead claim rests on this.

``INITIALIZE(I)`` is the bootstrap message of Figure 5 used only by the
initialisation procedure.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Request:
    """``REQUEST(X, Y)``: forwarded hop-by-hop toward the current sink.

    Attributes:
        sender: the adjacent node this copy of the request was sent by (the
            paper's ``X``).
        origin: the node that originally asked for the critical section (the
            paper's ``Y``).
    """

    sender: int
    origin: int

    type_name = "REQUEST"

    def payload_size(self) -> int:
        """Number of integer fields carried: two (Section 6.4)."""
        return 2

    def describe(self) -> str:
        return f"REQUEST({self.sender},{self.origin})"


@dataclass(frozen=True)
class Privilege:
    """``PRIVILEGE``: the token.  Carries no data structure (Section 6.4)."""

    type_name = "PRIVILEGE"

    def payload_size(self) -> int:
        """Number of integer fields carried: zero."""
        return 0

    def describe(self) -> str:
        return "PRIVILEGE"


@dataclass(frozen=True)
class Initialize:
    """``INITIALIZE(I)``: bootstrap flood identifying the path to the token.

    Attributes:
        origin: the node the message was sent by; receivers set their ``NEXT``
            variable to it (Figure 5).
    """

    origin: int

    type_name = "INITIALIZE"

    def payload_size(self) -> int:
        """Number of integer fields carried: one."""
        return 1

    def describe(self) -> str:
        return f"INITIALIZE({self.origin})"
