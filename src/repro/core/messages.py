"""Protocol messages of the DAG-based algorithm.

The paper uses exactly two messages during normal operation:

* ``REQUEST(X, Y)`` — ``X`` is the adjacent node the message arrives from and
  ``Y`` is the node that originated the request (Chapter 4).  The sender field
  ``X`` is carried explicitly here (even though the network also knows it) so
  the message is self-contained, matching the paper's formulation.
* ``PRIVILEGE`` — the token.  It deliberately carries **no** payload; Section
  6.4's storage-overhead claim rests on this.

``INITIALIZE(I)`` is the bootstrap message of Figure 5 used only by the
initialisation procedure.

The classes are hand-rolled ``__slots__`` value objects rather than frozen
dataclasses: a REQUEST is allocated on every forwarding hop, so construction
cost sits directly on the simulation's hot path (``object.__setattr__`` in a
frozen dataclass's ``__init__`` is several times slower than a plain slot
store).  They keep value equality and hashability.
"""

from __future__ import annotations


class Request:
    """``REQUEST(X, Y)``: forwarded hop-by-hop toward the current sink.

    Attributes:
        sender: the adjacent node this copy of the request was sent by (the
            paper's ``X``).
        origin: the node that originally asked for the critical section (the
            paper's ``Y``).
    """

    __slots__ = ("sender", "origin")

    type_name = "REQUEST"

    def __init__(self, sender: int, origin: int) -> None:
        self.sender = sender
        self.origin = origin

    def payload_size(self) -> int:
        """Number of integer fields carried: two (Section 6.4)."""
        return 2

    def describe(self) -> str:
        return f"REQUEST({self.sender},{self.origin})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Request):
            return self.sender == other.sender and self.origin == other.origin
        return NotImplemented

    def __hash__(self) -> int:
        return hash((Request, self.sender, self.origin))

    def __repr__(self) -> str:
        return f"Request(sender={self.sender!r}, origin={self.origin!r})"


class Privilege:
    """``PRIVILEGE``: the token.  Carries no data structure (Section 6.4)."""

    __slots__ = ()

    type_name = "PRIVILEGE"

    def payload_size(self) -> int:
        """Number of integer fields carried: zero."""
        return 0

    def describe(self) -> str:
        return "PRIVILEGE"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Privilege):
            return True
        return NotImplemented

    def __hash__(self) -> int:
        return hash(Privilege)

    def __repr__(self) -> str:
        return "Privilege()"


class Initialize:
    """``INITIALIZE(I)``: bootstrap flood identifying the path to the token.

    Attributes:
        origin: the node the message was sent by; receivers set their ``NEXT``
            variable to it (Figure 5).
    """

    __slots__ = ("origin",)

    type_name = "INITIALIZE"

    def __init__(self, origin: int) -> None:
        self.origin = origin

    def payload_size(self) -> int:
        """Number of integer fields carried: one."""
        return 1

    def describe(self) -> str:
        return f"INITIALIZE({self.origin})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Initialize):
            return self.origin == other.origin
        return NotImplemented

    def __hash__(self) -> int:
        return hash((Initialize, self.origin))

    def __repr__(self) -> str:
        return f"Initialize(origin={self.origin!r})"
