"""Runtime checks for the safety properties proved in Chapter 5.

The checker inspects a running :class:`~repro.core.protocol.DagMutexProtocol`
and raises :class:`~repro.exceptions.InvariantViolation` on the first breach.
Checked after every simulation event during stress tests, these correspond to
the paper's claims:

* **Mutual exclusion** (Theorem, §5.1): at most one node has the token and at
  most one node is inside its critical section.
* **Structure preservation** (assumption 2, §5.2): a node's ``NEXT`` pointer
  always targets a neighbour in the original logical tree, so forwarding
  requests only ever reverses edges and the undirected shape stays a tree.
* **Lemma 2**: the ``NEXT`` graph is acyclic — from any node, following
  ``NEXT`` pointers reaches a sink without revisiting a node.
* **Implicit queue sanity**: ``FOLLOW`` pointers never form a cycle and only
  nodes that are requesting or executing are referenced by someone's
  ``FOLLOW``.
* **Quiescent shape** (checked only when no messages are in flight and nobody
  is requesting): exactly one sink exists, it has the token, and every
  ``FOLLOW`` variable is empty.
"""

from __future__ import annotations

from typing import Set, TYPE_CHECKING

from repro.exceptions import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.core.protocol import DagMutexProtocol


class InvariantChecker:
    """Checks the Chapter 5 safety invariants of a protocol instance."""

    def __init__(self, protocol: "DagMutexProtocol") -> None:
        self._protocol = protocol
        self._tree_edges: Set[frozenset] = {
            frozenset(edge) for edge in protocol.topology.edges
        }
        self.checks_performed = 0

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #
    def check(self) -> None:
        """Run every invariant that must hold at *all* times."""
        self.checks_performed += 1
        self.check_single_token()
        self.check_mutual_exclusion()
        self.check_edges_stay_in_tree()
        self.check_next_graph_acyclic()
        self.check_follow_chain()
        if self._is_quiescent():
            self.check_quiescent_shape()

    # ------------------------------------------------------------------ #
    # individual invariants
    # ------------------------------------------------------------------ #
    def check_single_token(self) -> None:
        """At most one node has the token (§5.1)."""
        holders = [
            node_id
            for node_id, node in self._protocol.nodes.items()
            if node.has_token()
        ]
        if len(holders) > 1:
            raise InvariantViolation(
                f"mutual exclusion broken: nodes {sorted(holders)} all have the token"
            )

    def check_mutual_exclusion(self) -> None:
        """At most one node is inside its critical section (§5.1)."""
        executing = [
            node_id
            for node_id, node in self._protocol.nodes.items()
            if node.in_critical_section
        ]
        if len(executing) > 1:
            raise InvariantViolation(
                f"mutual exclusion broken: nodes {sorted(executing)} are all in their "
                "critical sections"
            )

    def check_edges_stay_in_tree(self) -> None:
        """Every ``NEXT`` pointer follows an edge of the original tree."""
        for node_id, node in self._protocol.nodes.items():
            target = node.next_node
            if target is None:
                continue
            if frozenset((node_id, target)) not in self._tree_edges:
                raise InvariantViolation(
                    f"node {node_id} points at {target}, which is not adjacent in the "
                    "original logical tree; the acyclic structure is no longer guaranteed"
                )

    def check_next_graph_acyclic(self) -> None:
        """Following ``NEXT`` pointers from any node terminates at a sink (Lemma 2)."""
        nodes = self._protocol.nodes
        for start in nodes:
            seen = set()
            current = start
            while current is not None:
                if current in seen:
                    raise InvariantViolation(
                        f"NEXT pointers form a cycle reachable from node {start}"
                    )
                seen.add(current)
                current = nodes[current].next_node
                if len(seen) > len(nodes):
                    raise InvariantViolation(
                        f"NEXT chain from node {start} exceeds the node count"
                    )

    def check_follow_chain(self) -> None:
        """``FOLLOW`` pointers reference only waiting/executing nodes, acyclically."""
        nodes = self._protocol.nodes
        referenced: Set[int] = set()
        for node_id, node in nodes.items():
            successor = node.follow
            if successor is None:
                continue
            if successor not in nodes:
                raise InvariantViolation(
                    f"node {node_id} FOLLOW points at unknown node {successor}"
                )
            if successor == node_id:
                raise InvariantViolation(f"node {node_id} FOLLOW points at itself")
            if successor in referenced:
                raise InvariantViolation(
                    f"node {successor} is referenced by more than one FOLLOW pointer"
                )
            referenced.add(successor)
            target = nodes[successor]
            if not (target.requesting or target.in_critical_section):
                raise InvariantViolation(
                    f"node {node_id} FOLLOW points at node {successor}, which is neither "
                    "waiting for the token nor executing"
                )
        # Acyclicity: since each node has at most one FOLLOW and no node is
        # referenced twice, a cycle would have to be disjoint from any chain
        # started at an unreferenced node; walk each chain to rule it out.
        for node_id, node in nodes.items():
            seen = {node_id}
            current = node.follow
            while current is not None:
                if current in seen:
                    raise InvariantViolation(
                        f"FOLLOW pointers form a cycle starting from node {node_id}"
                    )
                seen.add(current)
                current = nodes[current].follow

    def check_quiescent_shape(self) -> None:
        """With no traffic and no requests the structure matches Chapter 3."""
        nodes = self._protocol.nodes
        sinks = [node_id for node_id, node in nodes.items() if node.next_node is None]
        if len(sinks) != 1:
            raise InvariantViolation(
                f"quiescent system must have exactly one sink, found {sorted(sinks)}"
            )
        sink = sinks[0]
        if not nodes[sink].has_token():
            raise InvariantViolation(
                f"quiescent sink {sink} does not have the token"
            )
        followers = {
            node_id: node.follow for node_id, node in nodes.items() if node.follow is not None
        }
        if followers:
            raise InvariantViolation(
                f"quiescent system must have empty FOLLOW variables, found {followers}"
            )
        # Every node must reach the sink (Lemma 2 specialised to quiescence).
        for start in nodes:
            current = start
            hops = 0
            while current is not None and hops <= len(nodes):
                current = nodes[current].next_node
                hops += 1
            if hops > len(nodes):
                raise InvariantViolation(
                    f"node {start} cannot reach the sink within {len(nodes)} hops"
                )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _is_quiescent(self) -> bool:
        if self._protocol.network.messages_in_flight > 0:
            return False
        return not any(
            node.requesting or node.in_critical_section
            for node in self._protocol.nodes.values()
        )
