"""Array-native (structure-of-arrays) storage for the DAG protocol state.

At a million nodes the object backend's cost is "a million Python objects":
~780 MB of :class:`~repro.core.node.DagMutexNode` instances plus per-node
dispatch tables, and ~12 s just to build them.  This module stores the same
three paper variables — HOLDING, NEXT, FOLLOW — plus the requesting/in-CS
flags and the per-node entry counter as flat ``array``/``bytearray`` columns
indexed by node id, mirroring how :class:`~repro.topology.compact
.CompactTopology` replaced dict adjacency with CSR arrays:

* ``NEXT`` and ``FOLLOW`` — ``array('i')``, one int per node, ``0`` encoding
  the paper's "no pointer" (node ids start at 1, exactly the
  :class:`CompactTopology` convention);
* HOLDING / requesting / in-CS — one ``bytearray`` of bit flags;
* ``cs_entries`` — ``array('i')``.

That is 13 bytes of protocol state per node: ~130 MB at ten million nodes
where the object backend would need tens of gigabytes.  Construction is a
couple of array copies (the CSR topology's parent array *is* the initial
``NEXT`` column), which is what opens the ``--xxxlarge`` 10M-node tier.

The state machine here is a line-for-line transcription of
:class:`~repro.core.node.DagMutexNode` (Figure 3 of the paper): same variable
reads and writes in the same order, same metrics/trace calls, same error
messages.  The object nodes remain the always-tested reference
implementation; CI gates every compact run byte-identical against them
(the ``backend-identity`` matrix).

Delivery integration has three tiers, fastest first:

* :meth:`CompactDagState.deliver_batch` — the engine's drain loops hand a
  whole same-tick run of fast-path deliveries over in one call
  (``SimulationEngine.set_batch_sink``), so a burst of deliveries pays one
  Python call and one column-cache setup instead of one dispatch frame per
  message;
* :meth:`CompactDagState.deliver_one` — the fast-path sink for isolated
  deliveries, installed as the network's ``_deliver_fast``;
* :meth:`CompactDagState.on_message` — the observed path (metrics, trace,
  fault injectors), reached through the network's columnar fallback.

For code that expects node *objects* — the fault controller's token scan,
token regeneration, tests poking at ``system.nodes[i]`` — a lazy
:class:`CompactNodeMap` materialises lightweight :class:`DagNodeView`
proxies on demand; every view reads and writes the columns directly, so
views and columns can never disagree.
"""

from __future__ import annotations

from array import array
from collections.abc import Mapping
from typing import Any, Callable, Dict, Iterator, Optional

from repro.core.messages import Privilege, Request
from repro.core.state import NodeStateName, classify_state
from repro.exceptions import ProtocolError

EnterCallback = Callable[[int, float], None]

#: Node-backend modes accepted everywhere a backend can be chosen.
NODE_BACKENDS = ("object", "compact", "auto")

#: ``node_backend="auto"`` picks the compact columns at or above this many
#: nodes.  Below it the object nodes are kept: their per-delivery dispatch is
#: marginally cheaper than the columnar bit masking until construction cost
#: and cache pressure start to dominate, which is (measured) in the
#: hundred-thousand-node range — the same neighbourhood as the streaming
#: workload threshold.
COMPACT_NODE_BACKEND_THRESHOLD = 100_000

# Flag bits of the per-node state byte.
_HOLDING = 1
_REQUESTING = 2
_IN_CS = 4
_BUSY = _REQUESTING | _IN_CS

#: ``bytearray.translate`` table masking every state byte down to its busy
#: bits — lets completion checks scan millions of nodes in C.
_BUSY_TABLE = bytes(b & _BUSY for b in range(256))

# PRIVILEGE carries no payload and compares by type; one shared instance
# serves every token pass (same object the node backend uses).
_PRIVILEGE = Privilege()


def resolve_node_backend(mode: str, n: int) -> str:
    """Resolve a ``node_backend`` choice to ``"object"`` or ``"compact"``.

    ``"auto"`` picks the compact columns at or above
    :data:`COMPACT_NODE_BACKEND_THRESHOLD` nodes.

    Raises:
        ProtocolError: on an unknown mode string.
    """
    if mode not in NODE_BACKENDS:
        raise ProtocolError(
            f"unknown node backend {mode!r}; expected one of {NODE_BACKENDS}"
        )
    if mode == "auto":
        return "compact" if n >= COMPACT_NODE_BACKEND_THRESHOLD else "object"
    return mode


class CompactDagState:
    """All DAG protocol state for ``n`` nodes, as flat columns.

    Args:
        topology: the topology to initialise from.  Node ids must be the
            contiguous range ``1..n`` (every built-in topology constructor
            numbers nodes this way; :class:`CompactTopology` guarantees it).
        network: the network messages are sent through.  The caller is
            expected to also :meth:`~repro.sim.network.Network
            .attach_columnar` this state so deliveries route back here.
        metrics: optional collector receiving request/enter/exit events.
        trace: optional recorder receiving state-change events.
        on_enter: callback invoked as ``on_enter(node_id, time)`` on every
            critical-section entry; the experiment driver assigns it.

    Raises:
        ProtocolError: if the topology's node ids are not contiguous from 1
            (the columns are indexed by id, so gaps would silently alias).
    """

    def __init__(
        self,
        topology,
        network,
        *,
        metrics=None,
        trace=None,
        on_enter: Optional[EnterCallback] = None,
    ) -> None:
        nodes = topology.nodes
        n = len(nodes)
        if n == 0:
            raise ProtocolError("compact node backend needs at least one node")
        if isinstance(nodes, range):
            contiguous = nodes == range(1, n + 1)
        else:
            ids = list(nodes)
            contiguous = min(ids) == 1 and max(ids) == n
        if not contiguous:
            raise ProtocolError(
                "compact node backend requires contiguous node ids 1..n; "
                f"got {n} nodes spanning other identifiers (use "
                "node_backend='object' for irregular id spaces)"
            )
        self._n = n
        self.node_range = range(1, n + 1)
        holder = topology.token_holder
        # The CSR topology's parent array is exactly the initial NEXT column
        # (index 0 unused, 0 = no pointer): one C-level copy instead of ten
        # million mapping lookups.
        parent = getattr(topology, "_parent", None)
        if parent is not None and len(parent) == n + 1:
            next_col = array("i", parent)
        else:
            next_col = array("i", bytes(4 * (n + 1)))
            pointers = topology.next_pointers()
            for node_id in nodes:
                pointer = pointers[node_id]
                if pointer is None:
                    if node_id != holder:
                        raise ProtocolError(
                            f"node {node_id}: a node that does not hold the token "
                            "needs an initial NEXT pointer toward the holder"
                        )
                else:
                    next_col[node_id] = pointer
        if next_col[holder] != 0:
            raise ProtocolError(
                f"node {holder}: the initial token holder must be a sink (NEXT = 0)"
            )
        self._next = next_col
        self._follow = array("i", bytes(4 * (n + 1)))
        flags = bytearray(n + 1)
        flags[holder] = _HOLDING
        self._flags = flags
        self._entries = array("i", bytes(4 * (n + 1)))
        #: Total critical-section entries across all nodes (the metrics-free
        #: result path reads this instead of summing a column).
        self.total_entries = 0
        self._network = network
        self._engine = network.engine
        self._send = network.send
        self._metrics = metrics
        self._trace = trace
        self.on_enter = on_enter

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------ #
    # public protocol actions (transcriptions of DagMutexNode)
    # ------------------------------------------------------------------ #
    def request_cs(self, node_id: int) -> None:
        """Procedure P1's first half for ``node_id`` (see ``DagMutexNode``)."""
        flags = self._flags
        state = flags[node_id]
        if state & _REQUESTING:
            raise ProtocolError(f"node {node_id} already has an outstanding request")
        if state & _IN_CS:
            raise ProtocolError(f"node {node_id} is already in its critical section")

        if self._metrics is not None:
            self._metrics.cs_requested(node_id, self._engine._now)
        if self._trace is not None:
            self._trace.record(self._engine._now, "cs_request", node_id)

        if state & _HOLDING:
            # Idle token holder: P1 skips the request entirely.
            flags[node_id] = state & ~_HOLDING
            self._enter_critical_section(node_id)
            return

        flags[node_id] = state | _REQUESTING
        target = self._next[node_id]
        if target == 0:
            raise ProtocolError(
                f"node {node_id} is a sink without the token and without a request; "
                "the system was initialised inconsistently"
            )
        self._next[node_id] = 0
        self._send(node_id, target, Request(node_id, node_id))
        if self._trace is not None:
            self._trace.record(self._engine._now, "state_change", node_id,
                               reason="sent own request", next=None)

    def release_cs(self, node_id: int) -> None:
        """Procedure P1's second half for ``node_id`` (see ``DagMutexNode``)."""
        flags = self._flags
        state = flags[node_id]
        if not state & _IN_CS:
            raise ProtocolError(f"node {node_id} is not in its critical section")
        state &= ~_IN_CS
        if self._metrics is not None:
            self._metrics.cs_exited(node_id, self._engine._now)
        if self._trace is not None:
            self._trace.record(self._engine._now, "cs_exit", node_id)

        successor = self._follow[node_id]
        if successor:
            self._follow[node_id] = 0
            flags[node_id] = state
            self._send(node_id, successor, _PRIVILEGE)
            if self._trace is not None:
                self._trace.record(self._engine._now, "state_change", node_id,
                                   reason="passed token", to=successor)
        else:
            flags[node_id] = state | _HOLDING
            if self._trace is not None:
                self._trace.record(self._engine._now, "state_change", node_id,
                                   reason="kept token (HOLDING)")

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def on_message(self, receiver: int, sender: int, message: Any) -> None:
        """Observed-path dispatch (metrics/trace/fault runs) for one delivery."""
        kind = type(message)
        if kind is Request:
            self._handle_request(receiver, message.sender, message.origin)
        elif kind is Privilege:
            self._handle_privilege(receiver)
        else:
            raise ProtocolError(
                f"node {receiver} received unexpected message {message!r} from {sender}"
            )

    def deliver_one(self, payload) -> None:
        """Fast-path sink: one ``(sender, receiver, message)`` lite delivery.

        Installed as the network's ``_deliver_fast``, so it also owns the
        delivered-message count the network would otherwise bump.
        """
        sender, receiver, message = payload
        self._network._messages_delivered += 1
        kind = type(message)
        if kind is Request:
            self._handle_request(receiver, message.sender, message.origin)
        elif kind is Privilege:
            self._handle_privilege(receiver)
        else:
            raise ProtocolError(
                f"node {receiver} received unexpected message {message!r} from {sender}"
            )

    def deliver_batch(self, payloads) -> None:
        """Apply a same-tick run of fast-path deliveries in one call.

        The engine's drain loops collect consecutive lite entries addressed
        to :meth:`deliver_one` and hand the payload run here (see
        ``SimulationEngine.set_batch_sink``), replacing a dispatch frame per
        message with one loop over locally cached columns.  Only ever called
        on the unobserved fast path, so there are no metrics/trace branches —
        the batched transitions below are the observer-free projection of
        :meth:`_handle_request` / :meth:`_handle_privilege`, applied in
        exactly the delivery order the per-event path would have used.
        """
        network = self._network
        network._messages_delivered += len(payloads)
        flags = self._flags
        next_col = self._next
        follow_col = self._follow
        entries = self._entries
        send = self._send
        on_enter = self.on_enter
        engine = self._engine
        total = self.total_entries
        for sender, receiver, message in payloads:
            kind = type(message)
            if kind is Request:
                origin = message.origin
                target = next_col[receiver]
                if target:
                    send(receiver, target, Request(receiver, origin))
                else:
                    state = flags[receiver]
                    if state & _HOLDING:
                        flags[receiver] = state & ~_HOLDING
                        send(receiver, origin, _PRIVILEGE)
                    else:
                        follow_col[receiver] = origin
                next_col[receiver] = message.sender
            elif kind is Privilege:
                state = flags[receiver]
                if not state & _REQUESTING:
                    self.total_entries = total
                    raise ProtocolError(
                        f"node {receiver} received the PRIVILEGE message without an "
                        "outstanding request; the token was duplicated or misrouted"
                    )
                flags[receiver] = (state & ~_REQUESTING) | _IN_CS
                entries[receiver] += 1
                total += 1
                if on_enter is not None:
                    on_enter(receiver, engine._now)
            else:
                self.total_entries = total
                raise ProtocolError(
                    f"node {receiver} received unexpected message {message!r} "
                    f"from {sender}"
                )
        self.total_entries = total

    def _handle_request(self, node_id: int, adjacent: int, origin: int) -> None:
        """Procedure P2 of Figure 3 for ``REQUEST(adjacent, origin)``."""
        next_col = self._next
        target = next_col[node_id]
        if target == 0:
            flags = self._flags
            state = flags[node_id]
            if state & _HOLDING:
                flags[node_id] = state & ~_HOLDING
                self._send(node_id, origin, _PRIVILEGE)
                if self._trace is not None:
                    self._trace.record(self._engine._now, "state_change", node_id,
                                       reason="idle holder granted token", to=origin)
            else:
                self._follow[node_id] = origin
                if self._trace is not None:
                    self._trace.record(self._engine._now, "state_change", node_id,
                                       reason="captured FOLLOW", follow=origin)
        else:
            self._send(node_id, target, Request(node_id, origin))
        next_col[node_id] = adjacent

    def _handle_privilege(self, node_id: int) -> None:
        """The P1 wait point: the token arrived, enter the critical section."""
        flags = self._flags
        state = flags[node_id]
        if not state & _REQUESTING:
            raise ProtocolError(
                f"node {node_id} received the PRIVILEGE message without an "
                "outstanding request; the token was duplicated or misrouted"
            )
        flags[node_id] = state & ~_REQUESTING
        self._enter_critical_section(node_id)

    def _enter_critical_section(self, node_id: int) -> None:
        self._flags[node_id] |= _IN_CS
        self._entries[node_id] += 1
        self.total_entries += 1
        now = self._engine._now
        if self._metrics is not None:
            self._metrics.cs_entered(node_id, now)
        if self._trace is not None:
            self._trace.record(now, "cs_enter", node_id)
        on_enter = self.on_enter
        if on_enter is not None:
            on_enter(node_id, now)

    # ------------------------------------------------------------------ #
    # bulk introspection
    # ------------------------------------------------------------------ #
    def busy_nodes(self):
        """Ids of nodes currently requesting or executing, ascending.

        The common case — nobody busy at the end of a complete run — is
        answered by a C-level mask-and-count over the flag column; the Python
        scan runs only when someone actually is busy.
        """
        masked = self._flags.translate(_BUSY_TABLE)
        if masked.count(0) == len(masked):
            return []
        return [node_id for node_id in self.node_range if masked[node_id]]

    def snapshot(self, node_id: int) -> Dict[str, Any]:
        """The paper's per-node variable table row (Figure 6 style)."""
        state = self._flags[node_id]
        return {
            "HOLDING": bool(state & _HOLDING),
            "NEXT": self._next[node_id] or None,
            "FOLLOW": self._follow[node_id] or None,
            "requesting": bool(state & _REQUESTING),
            "in_cs": bool(state & _IN_CS),
            "state": self.state_name(node_id).value,
        }

    def state_name(self, node_id: int) -> NodeStateName:
        """``node_id``'s symbolic state in the Figure 4 transition graph."""
        state = self._flags[node_id]
        return classify_state(
            holding=bool(state & _HOLDING),
            in_critical_section=bool(state & _IN_CS),
            requesting=bool(state & _REQUESTING),
            follow=self._follow[node_id] or None,
        )


class DagNodeView:
    """A node-shaped window onto one row of :class:`CompactDagState`.

    Reads and writes go straight to the columns, so a view is always
    coherent with the state (and with every other view of the same node).
    Views satisfy everything downstream code asks of a
    :class:`~repro.core.node.DagMutexNode` — the driver's flag probes, the
    fault controller's ``has_token`` scan, token regeneration's pointer
    rewrites — without the per-node object cost: they are materialised
    lazily by :class:`CompactNodeMap` and usually die young.
    """

    __slots__ = ("_state", "node_id")

    def __init__(self, state: CompactDagState, node_id: int) -> None:
        self._state = state
        self.node_id = node_id

    # -- the three paper variables + driver flags ----------------------- #
    @property
    def holding(self) -> bool:
        return bool(self._state._flags[self.node_id] & _HOLDING)

    @holding.setter
    def holding(self, value: bool) -> None:
        flags = self._state._flags
        if value:
            flags[self.node_id] |= _HOLDING
        else:
            flags[self.node_id] &= ~_HOLDING

    @property
    def next_node(self) -> Optional[int]:
        return self._state._next[self.node_id] or None

    @next_node.setter
    def next_node(self, value: Optional[int]) -> None:
        self._state._next[self.node_id] = 0 if value is None else value

    @property
    def follow(self) -> Optional[int]:
        return self._state._follow[self.node_id] or None

    @follow.setter
    def follow(self, value: Optional[int]) -> None:
        self._state._follow[self.node_id] = 0 if value is None else value

    @property
    def requesting(self) -> bool:
        return bool(self._state._flags[self.node_id] & _REQUESTING)

    @requesting.setter
    def requesting(self, value: bool) -> None:
        flags = self._state._flags
        if value:
            flags[self.node_id] |= _REQUESTING
        else:
            flags[self.node_id] &= ~_REQUESTING

    @property
    def in_critical_section(self) -> bool:
        return bool(self._state._flags[self.node_id] & _IN_CS)

    @in_critical_section.setter
    def in_critical_section(self, value: bool) -> None:
        flags = self._state._flags
        if value:
            flags[self.node_id] |= _IN_CS
        else:
            flags[self.node_id] &= ~_IN_CS

    @property
    def cs_entries(self) -> int:
        return self._state._entries[self.node_id]

    # -- protocol actions ------------------------------------------------ #
    def request_cs(self) -> None:
        self._state.request_cs(self.node_id)

    def release_cs(self) -> None:
        self._state.release_cs(self.node_id)

    def on_message(self, sender: int, message: Any) -> None:
        self._state.on_message(self.node_id, sender, message)

    def send(self, target: int, message: Any) -> None:
        self._state._send(self.node_id, target, message)

    def _enter_critical_section(self) -> None:
        self._state._enter_critical_section(self.node_id)

    # -- introspection --------------------------------------------------- #
    def has_token(self) -> bool:
        return bool(self._state._flags[self.node_id] & (_HOLDING | _IN_CS))

    def is_sink(self) -> bool:
        return self._state._next[self.node_id] == 0

    def state_name(self) -> NodeStateName:
        return self._state.state_name(self.node_id)

    def snapshot(self) -> Dict[str, Any]:
        return self._state.snapshot(self.node_id)

    def __repr__(self) -> str:
        return (
            f"DagNodeView(id={self.node_id}, HOLDING={self.holding}, "
            f"NEXT={self.next_node}, FOLLOW={self.follow}, "
            f"state={self.state_name().value})"
        )


class CompactNodeMap(Mapping):
    """Lazy ``{node_id: DagNodeView}`` mapping over a :class:`CompactDagState`.

    Systems on the compact backend expose this as ``system.nodes`` so every
    consumer of the object API keeps working; views are created on access
    and never stored, so the map costs O(1) memory at any node count.
    """

    __slots__ = ("_state",)

    def __init__(self, state: CompactDagState) -> None:
        self._state = state

    def __getitem__(self, node_id: int) -> DagNodeView:
        if node_id not in self._state.node_range:
            raise KeyError(node_id)
        return DagNodeView(self._state, node_id)

    def __iter__(self) -> Iterator[int]:
        return iter(self._state.node_range)

    def __len__(self) -> int:
        return len(self._state.node_range)

    def __contains__(self, node_id) -> bool:
        return node_id in self._state.node_range
