"""The paper's contribution: the DAG-based distributed mutual exclusion algorithm.

Each node keeps only three variables — ``HOLDING``, ``NEXT`` and ``FOLLOW`` —
and exchanges two message types, ``REQUEST`` and ``PRIVILEGE``.  The logical
structure is a tree oriented toward the current sink; the global waiting queue
is implicit in the ``FOLLOW`` pointers and can be reconstructed by
:func:`~repro.core.inspector.implicit_queue`.

Public entry points:

* :class:`~repro.core.node.DagMutexNode` — one node of the protocol, usable
  directly on the simulation substrate;
* :class:`~repro.core.protocol.DagMutexProtocol` — builds a full system from a
  :class:`~repro.topology.Topology` and drives requests / releases;
* :class:`~repro.core.invariants.InvariantChecker` — checks the safety
  properties proved in Chapter 5 after every event;
* :func:`~repro.core.initialization.run_initialization` — the INIT flood of
  Figure 5, for bootstrapping a system whose nodes only know their neighbours.
"""

from repro.core.inspector import find_sinks, implicit_queue, token_holder
from repro.core.invariants import InvariantChecker
from repro.core.messages import Initialize, Privilege, Request
from repro.core.node import DagMutexNode
from repro.core.protocol import DagMutexProtocol
from repro.core.state import NodeStateName, classify_state
from repro.core.initialization import run_initialization

__all__ = [
    "Request",
    "Privilege",
    "Initialize",
    "DagMutexNode",
    "DagMutexProtocol",
    "NodeStateName",
    "classify_state",
    "InvariantChecker",
    "implicit_queue",
    "find_sinks",
    "token_holder",
    "run_initialization",
]
