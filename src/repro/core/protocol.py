"""System-level wrapper: a full DAG-mutex system on the simulation substrate.

:class:`DagMutexProtocol` builds one :class:`~repro.core.node.DagMutexNode`
per topology node, wires them to a shared network / metrics / trace, and
offers the small driving API (request, release, run) that the workload driver,
the examples and the tests use.  It can also run the
:class:`~repro.core.invariants.InvariantChecker` after every simulation event,
which is how the Chapter 5 safety properties are checked continuously during
stress tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.invariants import InvariantChecker
from repro.core.node import DagMutexNode, EnterCallback
from repro.exceptions import ProtocolError
from repro.sim.engine import SimulationEngine
from repro.sim.latency import LatencyModel
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Network
from repro.sim.trace import TraceRecorder
from repro.topology.base import Topology


class DagMutexProtocol:
    """A complete protocol instance over a given logical topology.

    Args:
        topology: the logical tree and initial token holder.
        latency: network latency model (default: constant one unit).
        record_trace: whether to record a full protocol trace.
        check_invariants: run the Chapter 5 safety checks after every event
            step driven through :meth:`run` / :meth:`run_until_quiescent`.
        on_enter: callback invoked whenever any node enters its critical
            section, as ``on_enter(node_id, time)``.

    Example:
        >>> from repro.topology import star
        >>> protocol = DagMutexProtocol(star(5))
        >>> protocol.request(3)
        >>> protocol.run_until_quiescent()
        >>> protocol.node(3).in_critical_section
        True
        >>> protocol.release(3)
        >>> protocol.metrics.completed_entries
        1
    """

    def __init__(
        self,
        topology: Topology,
        *,
        latency: Optional[LatencyModel] = None,
        record_trace: bool = False,
        check_invariants: bool = False,
        collect_metrics: bool = True,
        on_enter: Optional[EnterCallback] = None,
    ) -> None:
        self.topology = topology
        self.engine = SimulationEngine()
        # ``collect_metrics=False`` leaves the network unobserved so its
        # zero-overhead fast path is active; throughput benchmarks use it.
        self.metrics: Optional[MetricsCollector] = (
            MetricsCollector() if collect_metrics else None
        )
        self.trace = TraceRecorder(enabled=record_trace)
        self.network = Network(
            self.engine,
            latency=latency,
            metrics=self.metrics,
            trace=self.trace if record_trace else None,
        )
        self._nodes: Dict[int, DagMutexNode] = {}
        pointers = topology.next_pointers()
        for node_id in topology.nodes:
            self._nodes[node_id] = DagMutexNode(
                node_id,
                self.network,
                holding=(node_id == topology.token_holder),
                next_node=pointers[node_id],
                metrics=self.metrics,
                trace=self.trace if record_trace else None,
                on_enter=on_enter,
            )
        self._checker = InvariantChecker(self) if check_invariants else None

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    @property
    def node_ids(self) -> List[int]:
        """All node identifiers, in topology order."""
        return list(self._nodes)

    @property
    def nodes(self) -> Dict[int, DagMutexNode]:
        """Mapping of node id to node object (live view, do not mutate)."""
        return self._nodes

    def node(self, node_id: int) -> DagMutexNode:
        """The node object for ``node_id``."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ProtocolError(f"unknown node {node_id}") from None

    @property
    def invariant_checker(self) -> Optional[InvariantChecker]:
        """The attached invariant checker, if enabled."""
        return self._checker

    # ------------------------------------------------------------------ #
    # driving the protocol
    # ------------------------------------------------------------------ #
    def request(self, node_id: int) -> None:
        """Issue a critical-section request at ``node_id`` (procedure P1)."""
        self.node(node_id).request_cs()
        self._check()

    def release(self, node_id: int) -> None:
        """Release the critical section at ``node_id``."""
        self.node(node_id).release_cs()
        self._check()

    def run(self, *, max_events: Optional[int] = None, until: Optional[float] = None) -> int:
        """Advance the simulation, checking invariants after every event.

        Returns the number of events processed.  Without an attached
        invariant checker the engine runs the whole batch in one call rather
        than being re-entered once per event.
        """
        if self._checker is None:
            return self.engine.run(max_events=max_events, until=until)
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                break
            stepped = self.engine.run(max_events=1, until=until)
            if stepped == 0:
                break
            processed += stepped
            self._check()
        return processed

    def run_until_quiescent(self, *, max_events: int = 1_000_000) -> int:
        """Run until no events remain (all messages delivered).

        Raises:
            ProtocolError: if ``max_events`` is exceeded, which for this
                protocol can only mean a livelock bug.
        """
        processed = self.run(max_events=max_events)
        if self.engine.pending_events > 0:
            raise ProtocolError(
                f"simulation did not quiesce within {max_events} events"
            )
        return processed

    # ------------------------------------------------------------------ #
    # system-wide introspection
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[int, Dict[str, object]]:
        """Per-node variable tables, Figure 6 style."""
        return {node_id: node.snapshot() for node_id, node in sorted(self._nodes.items())}

    def token_location(self) -> Optional[int]:
        """The node currently having the token, or ``None`` while in transit."""
        holders = [node_id for node_id, node in self._nodes.items() if node.has_token()]
        if len(holders) > 1:
            raise ProtocolError(f"multiple nodes report having the token: {sorted(holders)}")
        return holders[0] if holders else None

    def _check(self) -> None:
        if self._checker is not None:
            self._checker.check()
