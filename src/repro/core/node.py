"""One node of the DAG-based mutual exclusion protocol.

This is a direct, event-driven transcription of the paper's Figure 3.  The
pseudo-code there is written as two blocking procedures (P1 makes a request
and waits; P2 handles incoming requests); here P1 is split at its wait point
into :meth:`DagMutexNode.request_cs` (everything before the wait) and the
PRIVILEGE branch of :meth:`DagMutexNode.on_message` (everything after), which
is the standard transformation onto an event loop and does not change the
order in which the variables are read or written.

Variable names follow the paper: ``HOLDING`` (token held while not in the
critical section and with no pending request), ``NEXT`` (the neighbour on the
path toward the current sink, ``None`` when this node *is* a sink — the
paper's 0), and ``FOLLOW`` (the node to hand the token to next, ``None`` when
empty).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.messages import Privilege, Request
from repro.core.state import NodeStateName, classify_state
from repro.exceptions import ProtocolError
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Network
from repro.sim.process import SimProcess
from repro.sim.trace import TraceRecorder

EnterCallback = Callable[[int, float], None]

# PRIVILEGE carries no payload and compares by type, so a single shared
# instance serves every token pass without per-send allocation.
_PRIVILEGE = Privilege()


class DagMutexNode(SimProcess):
    """A protocol participant holding the three paper variables.

    Args:
        node_id: this node's identifier.
        network: the reliable FIFO network shared by all nodes.
        holding: whether this node initially holds the token (exactly one node
            in the system must).
        next_node: initial ``NEXT`` value — the neighbour on the path toward
            the token holder, or ``None`` if this node holds the token.
        metrics: optional collector receiving request/enter/exit events.
        trace: optional recorder receiving state-change events.
        on_enter: optional callback invoked as ``on_enter(node_id, time)``
            whenever this node enters its critical section.  The experiment
            driver uses it to schedule the corresponding release.
    """

    def __init__(
        self,
        node_id: int,
        network: Network,
        *,
        holding: bool = False,
        next_node: Optional[int] = None,
        metrics: Optional[MetricsCollector] = None,
        trace: Optional[TraceRecorder] = None,
        on_enter: Optional[EnterCallback] = None,
    ) -> None:
        super().__init__(node_id, network)
        if holding and next_node is not None:
            raise ProtocolError(
                f"node {node_id}: the initial token holder must be a sink (NEXT = 0)"
            )
        if not holding and next_node is None:
            raise ProtocolError(
                f"node {node_id}: a node that does not hold the token needs an initial "
                "NEXT pointer toward the holder"
            )
        self.holding = holding
        self.next_node = next_node
        self.follow: Optional[int] = None
        self.requesting = False
        self.in_critical_section = False
        self.cs_entries = 0
        self._metrics = metrics
        self._trace = trace
        self._on_enter = on_enter
        # Type-keyed dispatch: one dict lookup per message instead of an
        # isinstance chain.
        self._dispatch = {
            Request: self._handle_request,
            Privilege: self._handle_privilege,
        }
        # Fast-path deliveries dispatch through this table directly, without
        # the on_message frame (identical semantics, same error fallback).
        network.register_dispatch_table(node_id, self._dispatch)

    # ------------------------------------------------------------------ #
    # public protocol actions
    # ------------------------------------------------------------------ #
    def request_cs(self) -> None:
        """Ask to enter the critical section (first half of procedure P1).

        If the node already holds the token it enters immediately without any
        messages; otherwise it sends ``REQUEST(I, I)`` toward the sink and
        becomes a sink itself (``NEXT := 0``), then waits for the PRIVILEGE
        message to arrive.

        Raises:
            ProtocolError: if the node already has an outstanding request or
                is inside its critical section (the paper allows at most one
                outstanding request per node).
        """
        if self.requesting:
            raise ProtocolError(f"node {self.node_id} already has an outstanding request")
        if self.in_critical_section:
            raise ProtocolError(f"node {self.node_id} is already in its critical section")

        if self._metrics is not None:
            self._metrics.cs_requested(self.node_id, self.now)
        if self._trace is not None:
            self._trace.record(self.now, "cs_request", self.node_id)

        if self.holding:
            # The node is an idle token holder: P1 skips the request entirely.
            self.holding = False
            self._enter_critical_section()
            return

        self.requesting = True
        if self.next_node is None:
            # Not holding and NEXT = 0 can only mean an earlier request of ours
            # is still outstanding (Lemma 1), which the guard above rejects.
            raise ProtocolError(
                f"node {self.node_id} is a sink without the token and without a request; "
                "the system was initialised inconsistently"
            )
        target = self.next_node
        self.next_node = None
        self.send(target, Request(self.node_id, self.node_id))
        if self._trace is not None:
            self._trace.record(self.now, "state_change", self.node_id,
                               reason="sent own request", next=None)

    def release_cs(self) -> None:
        """Leave the critical section (second half of procedure P1).

        Passes the token to ``FOLLOW`` if a successor was captured while this
        node was executing; otherwise keeps the token by setting ``HOLDING``.

        Raises:
            ProtocolError: if the node is not in its critical section.
        """
        if not self.in_critical_section:
            raise ProtocolError(f"node {self.node_id} is not in its critical section")
        self.in_critical_section = False
        if self._metrics is not None:
            self._metrics.cs_exited(self.node_id, self.now)
        if self._trace is not None:
            self._trace.record(self.now, "cs_exit", self.node_id)

        if self.follow is not None:
            successor = self.follow
            self.follow = None
            self.send(successor, _PRIVILEGE)
            if self._trace is not None:
                self._trace.record(self.now, "state_change", self.node_id,
                                   reason="passed token", to=successor)
        else:
            self.holding = True
            if self._trace is not None:
                self._trace.record(self.now, "state_change", self.node_id,
                                   reason="kept token (HOLDING)")

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def on_message(self, sender: int, message: Any) -> None:
        """Dispatch REQUEST to procedure P2 and PRIVILEGE to the P1 wait point."""
        handler = self._dispatch.get(type(message))
        if handler is None:
            raise ProtocolError(
                f"node {self.node_id} received unexpected message {message!r} from {sender}"
            )
        handler(sender, message)

    def _handle_request(self, sender: int, message: Request) -> None:
        """Procedure P2 of Figure 3 for ``REQUEST(X, Y)``."""
        adjacent = message.sender
        origin = message.origin

        if self.next_node is None:
            # This node is a sink: the request has reached the end of the path.
            if self.holding:
                # Transition 8 (state H): hand the idle token straight to the
                # request's originator.
                self.holding = False
                self.send(origin, _PRIVILEGE)
                if self._trace is not None:
                    self._trace.record(self.now, "state_change", self.node_id,
                                       reason="idle holder granted token", to=origin)
            else:
                # The sink is requesting or executing: capture the requester as
                # our successor in the implicit queue.
                self.follow = origin
                if self._trace is not None:
                    self._trace.record(self.now, "state_change", self.node_id,
                                       reason="captured FOLLOW", follow=origin)
        else:
            # Intermediate node: forward the request toward the sink on the
            # originator's behalf.
            self.send(self.next_node, Request(self.node_id, origin))
        # In every case the edge to the adjacent sender is reversed so later
        # requests travel toward the new sink.
        self.next_node = adjacent

    def _handle_privilege(self, sender: int, message: Privilege) -> None:
        """The P1 wait point: the token arrived, enter the critical section."""
        if not self.requesting:
            raise ProtocolError(
                f"node {self.node_id} received the PRIVILEGE message without an "
                "outstanding request; the token was duplicated or misrouted"
            )
        self.requesting = False
        self._enter_critical_section()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def state_name(self) -> NodeStateName:
        """This node's symbolic state in the Figure 4 transition graph."""
        return classify_state(
            holding=self.holding,
            in_critical_section=self.in_critical_section,
            requesting=self.requesting,
            follow=self.follow,
        )

    def is_sink(self) -> bool:
        """Whether this node is currently a sink (``NEXT = 0``)."""
        return self.next_node is None

    def has_token(self) -> bool:
        """Whether the token currently resides at this node.

        The token is here if the node is idle-holding it or executing its
        critical section.  A node *waiting* for the PRIVILEGE message does not
        have the token even though it is a sink.
        """
        return self.holding or self.in_critical_section

    def snapshot(self) -> Dict[str, Any]:
        """The paper's per-node variable table row (Figure 6 style)."""
        return {
            "HOLDING": self.holding,
            "NEXT": self.next_node,
            "FOLLOW": self.follow,
            "requesting": self.requesting,
            "in_cs": self.in_critical_section,
            "state": self.state_name().value,
        }

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _enter_critical_section(self) -> None:
        self.in_critical_section = True
        self.cs_entries += 1
        now = self.engine._now  # the `now` property frame costs at this rate
        if self._metrics is not None:
            self._metrics.cs_entered(self.node_id, now)
        if self._trace is not None:
            self._trace.record(now, "cs_enter", self.node_id)
        if self._on_enter is not None:
            self._on_enter(self.node_id, now)

    def __repr__(self) -> str:
        return (
            f"DagMutexNode(id={self.node_id}, HOLDING={self.holding}, "
            f"NEXT={self.next_node}, FOLLOW={self.follow}, state={self.state_name().value})"
        )
