"""Reconstructing the implicit waiting queue.

A central claim of the paper (Chapter 3 and the abstract) is that no node and
no message carries a queue of pending requests; instead "the queue is
maintained implicitly in a distributed manner and may be deduced by observing
the states of the nodes".  These helpers perform exactly that deduction, and
the property tests check that the deduced queue equals the order in which the
token is subsequently granted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.exceptions import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.protocol import DagMutexProtocol


def token_holder(protocol: "DagMutexProtocol") -> Optional[int]:
    """The node currently having the token, or ``None`` while it is in flight."""
    holders = [
        node_id for node_id, node in protocol.nodes.items() if node.has_token()
    ]
    if len(holders) > 1:
        raise InvariantViolation(
            f"token duplicated: nodes {sorted(holders)} all report having it"
        )
    return holders[0] if holders else None


def find_sinks(protocol: "DagMutexProtocol") -> List[int]:
    """All current sink nodes (``NEXT = 0``).

    In a quiescent system exactly one sink exists; while requests are in
    transit there may temporarily be up to three (Chapter 3).
    """
    return sorted(
        node_id for node_id, node in protocol.nodes.items() if node.next_node is None
    )


def implicit_queue(protocol: "DagMutexProtocol", *, start: Optional[int] = None) -> List[int]:
    """The implicit waiting queue, deduced by chasing ``FOLLOW`` pointers.

    Args:
        protocol: the running protocol instance.
        start: where to start the chase; defaults to the current token holder.
            While the token is in transit the caller can pass the node the
            token was last sent to.

    Returns:
        The list of node identifiers that will enter the critical section
        after ``start``, in order.  Empty when nothing is queued.

    Raises:
        InvariantViolation: if the FOLLOW chain contains a cycle, which would
            mean two nodes each expect to hand the token to the other.
    """
    nodes = protocol.nodes
    if start is None:
        start = token_holder(protocol)
        if start is None:
            return []
    queue: List[int] = []
    seen = {start}
    current = nodes[start].follow
    while current is not None:
        if current in seen:
            raise InvariantViolation(
                f"FOLLOW pointers form a cycle: {queue + [current]}"
            )
        queue.append(current)
        seen.add(current)
        current = nodes[current].follow
    return queue


def next_pointer_map(protocol: "DagMutexProtocol") -> Dict[int, Optional[int]]:
    """Current ``NEXT`` values of every node (``None`` for sinks)."""
    return {node_id: node.next_node for node_id, node in sorted(protocol.nodes.items())}


def waiting_nodes(protocol: "DagMutexProtocol") -> List[int]:
    """Nodes with an outstanding request that have not yet entered the CS."""
    return sorted(
        node_id for node_id, node in protocol.nodes.items() if node.requesting
    )
