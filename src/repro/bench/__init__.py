"""Throughput benchmark harness for the simulation core.

This package measures end-to-end simulation throughput (engine events per
wall-clock second) over a standard scenario matrix, writes the
``BENCH_throughput.json`` regression record, and checks that the optimized
core still replays the seed engine's event order exactly.  See
``benchmarks/README.md`` for the file format and the CLI entry point
(``repro bench``).
"""

from repro.bench.baselines import (
    BASELINE_ALGORITHMS,
    BaselineScenarioResult,
    BaselineScenarioSpec,
    baseline_default_matrix,
    baseline_smoke_matrix,
    run_baseline_benchmark,
    run_baseline_scenario,
    run_calibrated_baseline_benchmark,
)
from repro.bench.faults import (
    DEGRADATION_ALGORITHMS,
    DEGRADATION_PROFILES,
    FAULT_BENCH_SCHEMA,
    FaultScenarioSpec,
    check_fault_baseline,
    default_fault_matrix,
    deterministic_fault_document,
    recovery_matrix,
    run_fault_benchmark,
    run_fault_scenario,
    smoke_fault_matrix,
)
from repro.bench.setup_cost import (
    construction_matrix,
    run_setup_benchmark,
    run_setup_scenario,
)
from repro.bench.throughput import (
    ACCEPTANCE_SCENARIO,
    STREAMING_NODE_THRESHOLD,
    XXLARGE_HEAVY_ROUNDS,
    ScenarioResult,
    ScenarioSpec,
    bench_workload_spec,
    check_against_baseline,
    default_matrix,
    determinism_fingerprint,
    fast_path_consistent,
    large_matrix,
    min_merge_documents,
    run_benchmark,
    run_calibrated_benchmark,
    run_scenario,
    schedulers_equivalent,
    smoke_matrix,
    xlarge_matrix,
    xxlarge_matrix,
    xxxlarge_matrix,
)

__all__ = [
    "ACCEPTANCE_SCENARIO",
    "STREAMING_NODE_THRESHOLD",
    "XXLARGE_HEAVY_ROUNDS",
    "BASELINE_ALGORITHMS",
    "BaselineScenarioResult",
    "BaselineScenarioSpec",
    "DEGRADATION_ALGORITHMS",
    "DEGRADATION_PROFILES",
    "FAULT_BENCH_SCHEMA",
    "FaultScenarioSpec",
    "ScenarioResult",
    "ScenarioSpec",
    "baseline_default_matrix",
    "baseline_smoke_matrix",
    "bench_workload_spec",
    "check_against_baseline",
    "check_fault_baseline",
    "construction_matrix",
    "default_fault_matrix",
    "default_matrix",
    "deterministic_fault_document",
    "determinism_fingerprint",
    "fast_path_consistent",
    "large_matrix",
    "min_merge_documents",
    "recovery_matrix",
    "run_baseline_benchmark",
    "run_baseline_scenario",
    "run_calibrated_baseline_benchmark",
    "run_benchmark",
    "run_calibrated_benchmark",
    "run_fault_benchmark",
    "run_fault_scenario",
    "run_scenario",
    "run_setup_benchmark",
    "run_setup_scenario",
    "schedulers_equivalent",
    "smoke_fault_matrix",
    "smoke_matrix",
    "xlarge_matrix",
    "xxlarge_matrix",
    "xxxlarge_matrix",
]
