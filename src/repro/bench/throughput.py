"""End-to-end throughput benchmark for the simulation hot path.

The events-per-second number measured here gates everything the evaluation
produces: every paper metric comes out of replaying workloads through
``SimulationEngine`` → ``Network`` → node callbacks.  The benchmark drives a
standard scenario matrix (topology family × node count × demand level)
through the *unobserved* fast path (no metrics collector attached), exactly
how large-scale sweeps run, and records:

* events/sec, messages/sec, wall time and process peak RSS per scenario;
* a correctness assertion that the DAG algorithm stays within the paper's
  worst-case message bound (``D + 1`` messages per entry, Section 6.1);
* a determinism fingerprint — a fixed-seed 50-node run whose entry order,
  message counts and finish time must be byte-identical to the values
  recorded from the seed (pre-optimization) engine;
* the recorded seed baseline, so the speedup and later regressions are
  computed against a committed reference.

Scenario definitions are frozen: changing them silently would invalidate the
committed baseline in ``benchmarks/seed_baseline.json``.
"""

from __future__ import annotations

import copy
import json
import resource
import sys
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.sim.latency import ConstantLatency, UniformLatency
from repro.sim.rng import SeededRNG
from repro.spec import (
    STREAMING_NODE_THRESHOLD,
    XXLARGE_HEAVY_ROUNDS,
    ExperimentSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.topology import star
from repro.topology.base import Topology
from repro.topology.metrics import diameter
from repro.workload.driver import ExperimentDriver, run_experiment
from repro.workload.generator import WorkloadGenerator
from repro.workload.requests import Workload

#: The scenario the acceptance criterion (>= 3x over seed) is judged on.
ACCEPTANCE_SCENARIO = "star-n1000-heavy"

_TOPOLOGY_KINDS = ("line", "star", "tree")
_SIZES = (100, 1000, 5000)
_DEMANDS = ("light", "heavy")


@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of the benchmark matrix (the DAG algorithm throughout)."""

    kind: str
    n: int
    demand: str

    @property
    def name(self) -> str:
        return f"{self.kind}-n{self.n}-{self.demand}"

    def experiment_spec(
        self, *, scheduler: str = "auto", node_backend: str = "auto"
    ) -> ExperimentSpec:
        """The cell as a canonical :class:`~repro.spec.ExperimentSpec`.

        Benchmark cells run the DAG algorithm on the unobserved fast path
        with seed 0 — exactly the recorded-seed-baseline configuration.
        ``node_backend`` picks object nodes vs the columnar array core
        ("auto" switches to the columns at
        :data:`~repro.core.compact_state.COMPACT_NODE_BACKEND_THRESHOLD`
        nodes); the virtual-time outcome is identical either way, so the
        committed per-scenario counts stay valid across backends.
        """
        return ExperimentSpec(
            algorithm="dag",
            topology=TopologySpec(kind=self.kind, n=self.n),
            workload=bench_workload_spec(self.demand, self.n),
            scheduler=scheduler,
            seed=0,
            collect_metrics=False,
            node_backend=node_backend,
        )


@dataclass
class ScenarioResult:
    """Measured outcome of one scenario run."""

    scenario: str
    kind: str
    n: int
    demand: str
    events: int
    messages: int
    entries: int
    wall_seconds: float
    events_per_sec: float
    messages_per_sec: float
    messages_per_entry: float
    bound_messages_per_entry: float
    #: Process-lifetime peak RSS sampled after this scenario (a running
    #: maximum across the benchmark run, not a per-scenario measurement).
    peak_rss_kb: int
    #: The engine scheduler the run engaged ("heap" or "ring").
    scheduler: str = "heap"
    #: The node backend the run engaged ("object" or "compact").
    node_backend: str = "object"

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


def default_matrix() -> List[ScenarioSpec]:
    """The full committed matrix: 3 topologies x 3 sizes x 2 demand levels."""
    return [
        ScenarioSpec(kind, n, demand)
        for kind in _TOPOLOGY_KINDS
        for n in _SIZES
        for demand in _DEMANDS
    ]


def smoke_matrix() -> List[ScenarioSpec]:
    """A ~30-second subset for CI: every topology, heavy demand, n <= 1000."""
    return [
        ScenarioSpec(kind, n, "heavy") for kind in _TOPOLOGY_KINDS for n in (100, 1000)
    ]


def large_matrix() -> List[ScenarioSpec]:
    """The default matrix plus the 10k-node tier (including bursty demand).

    The 10k scenarios are additive: regression checks compare by scenario
    name, so documents committed before this tier existed stay valid.  At
    ~1M ev/s the heaviest cell (``line-n10000-light``, whose isolated
    requests each cross the 10k-hop diameter) runs in single-digit seconds.
    """
    matrix = default_matrix()
    matrix.extend(
        ScenarioSpec(kind, 10000, demand)
        for kind in _TOPOLOGY_KINDS
        for demand in ("light", "heavy", "bursty")
    )
    return matrix


def xlarge_matrix() -> List[ScenarioSpec]:
    """The large matrix plus the 100k-node tier (heavy demand only).

    100k nodes is the tier the ROADMAP flagged as blocked on per-scenario
    wall budget: a heavy run is ~5M events (1M requests), minutes on the
    seed engine and seconds now.  Star and tree only — a 100k-hop line
    diameter measures topology pathology, not engine throughput — and like
    the 10k tier the names are additive, so older committed documents stay
    valid.
    """
    matrix = large_matrix()
    matrix.extend(ScenarioSpec(kind, 100000, "heavy") for kind in ("star", "tree"))
    return matrix


def xxlarge_matrix() -> List[ScenarioSpec]:
    """The xlarge matrix plus the 1M-node tier (heavy demand, star/tree).

    The tier the ROADMAP flagged as blocked on *setup*, not the event loop:
    at a million nodes the old construction pipeline spent ~6 s and ~500 MB
    on the topology alone and would have needed gigabytes for a materialised
    heavy schedule.  These cells run on the array-backed (CSR) topologies
    and the streamed workload pipeline (:data:`STREAMING_NODE_THRESHOLD`),
    so the whole replay fits in bounded RSS.  Names are additive like every
    tier before, so committed documents stay valid.
    """
    matrix = xlarge_matrix()
    matrix.extend(ScenarioSpec(kind, 1_000_000, "heavy") for kind in ("star", "tree"))
    return matrix


def xxxlarge_matrix() -> List[ScenarioSpec]:
    """The xxlarge matrix plus the 10M-node tier (heavy demand, star/tree).

    The ten-million-node tier exists for *construction*, not replay: CI
    stands these cells up with ``repro bench --setup-only --xxxlarge`` (the
    columnar node backend builds the whole population as flat array columns
    in well under a second and a few hundred megabytes) but draining ~100M
    protocol events is a local, not a CI, exercise.  The tree cell rounds up
    to the next full balanced binary tree (2^24 - 1 ~ 16.8M nodes), like
    every tree cell before it rounds to its own power of two.  Names are
    additive, so committed documents stay valid.
    """
    matrix = xxlarge_matrix()
    matrix.extend(ScenarioSpec(kind, 10_000_000, "heavy") for kind in ("star", "tree"))
    return matrix


#: Demand levels of the DAG benchmark matrix (a subset of the spec tiers).
_BENCH_DEMANDS = ("light", "heavy", "bursty")


def bench_workload_spec(demand: str, n: int) -> WorkloadSpec:
    """The benchmark matrix's frozen tier parameterisation as a spec.

    Heavy demand is ten materialised rounds below the streaming threshold
    and :data:`~repro.spec.XXLARGE_HEAVY_ROUNDS` streamed rounds above it —
    spelled out explicitly here so a cell's spec JSON says what actually
    runs (matching the recorded seed baseline byte for byte).
    """
    if demand not in _BENCH_DEMANDS:
        raise ValueError(f"unknown demand level {demand!r}")
    if demand == "heavy":
        if n >= STREAMING_NODE_THRESHOLD:
            return WorkloadSpec(
                tier="heavy", rounds=XXLARGE_HEAVY_ROUNDS, streaming=True
            )
        return WorkloadSpec(tier="heavy", rounds=10)
    return WorkloadSpec(tier=demand)


def build_topology(kind: str, n: int) -> Topology:
    """Frozen scenario topologies (matches the recorded seed baseline)."""
    if kind not in ("line", "star", "tree"):
        raise ValueError(f"unknown benchmark topology kind {kind!r}")
    return TopologySpec(kind=kind, n=n).build()


def build_workload(topology: Topology, demand: str, *, seed: int = 0) -> Workload:
    """Frozen scenario workloads (matches the recorded seed baseline)."""
    return bench_workload_spec(demand, len(topology.nodes)).build(topology, seed=seed)


#: Minimum timing window for a trustworthy events/sec figure.  A scenario
#: whose single replay finishes faster than this is re-measured over enough
#: back-to-back replays to fill the window (scheduler noise on a
#: few-millisecond run can exceed the regression gate's entire tolerance).
MIN_MEASUREMENT_WINDOW_SECONDS = 0.05


def measure_fastest(system_factory, workload, *, repeat: int = 3, scheduler: str = "auto"):
    """Replay ``workload`` against fresh systems ``repeat`` times; keep the fastest.

    Each repetition rebuilds the whole system, so the virtual-time outcome is
    identical every time — only the wall clock varies, and best-of-N damps
    scheduler noise.  Shared by the DAG and baseline benchmark matrices.
    ``scheduler`` is handed to :class:`ExperimentDriver` ("auto" engages the
    bucket ring on lattice-timestamped dense-traffic scenarios; the replay
    outcome is identical either way).

    If the fastest repetition is shorter than
    :data:`MIN_MEASUREMENT_WINDOW_SECONDS`, the scenario is re-timed over
    enough back-to-back replays to fill the window and the returned wall is
    the per-replay average — the rate stays comparable to a single-run
    measurement while the noise drops with the window length.  This is what
    lets the regression gate apply its rate tolerance to *every* scenario,
    including the ones that finish in a couple of milliseconds.

    Returns:
        ``(wall_seconds, experiment_result, events, messages, scheduler_kind)``
        of the fastest repetition (``wall_seconds`` is a per-replay average
        when the window re-measurement kicked in).
    """
    best = None
    engaged = "heap"
    for _ in range(max(1, repeat)):
        system = system_factory()
        driver = ExperimentDriver(system, workload, scheduler=scheduler)
        engaged = system.engine.scheduler_kind
        start = time.perf_counter()
        result = driver.run(max_events=50_000_000)
        wall = time.perf_counter() - start
        if best is None or wall < best[0]:
            best = (
                wall,
                result,
                system.engine.processed_events,
                system.network.messages_sent,
            )
    wall, result, events, messages = best
    if wall < MIN_MEASUREMENT_WINDOW_SECONDS:
        replays = min(
            200, max(2, int(MIN_MEASUREMENT_WINDOW_SECONDS / max(wall, 1e-5)) + 1)
        )
        # Time only the run, like the single-replay path above: construction
        # stays outside the clock so both paths measure the same quantity.
        window = 0.0
        for _ in range(replays):
            system = system_factory()
            driver = ExperimentDriver(system, workload, scheduler=scheduler)
            start = time.perf_counter()
            driver.run(max_events=50_000_000)
            window += time.perf_counter() - start
        wall = window / replays
    return wall, result, events, messages, engaged


def run_scenario(
    spec: ScenarioSpec,
    *,
    repeat: int = 3,
    scheduler: str = "auto",
    node_backend: str = "auto",
) -> ScenarioResult:
    """Run one scenario best-of-``repeat`` (see :func:`measure_fastest`)."""
    experiment = spec.experiment_spec(scheduler=scheduler, node_backend=node_backend)
    # Topology and workload are built once and shared across repetitions;
    # only the system under test is rebuilt per replay.
    topology = experiment.topology.build()
    workload = experiment.workload.build(topology, seed=experiment.seed)
    bound = float(diameter(topology) + 1)
    engaged_backend = "object"

    def system_factory():
        nonlocal engaged_backend
        system = experiment.build_system(topology)
        engaged_backend = system.node_backend
        return system

    wall, result, events, messages, engaged = measure_fastest(
        system_factory,
        workload,
        repeat=repeat,
        scheduler=scheduler,
    )
    if result.messages_per_entry > bound + 1e-9:
        raise AssertionError(
            f"{spec.name}: {result.messages_per_entry:.3f} messages/entry exceeds "
            f"the paper's D+1 bound of {bound:.0f}"
        )
    return ScenarioResult(
        scenario=spec.name,
        kind=spec.kind,
        n=spec.n,
        demand=spec.demand,
        events=events,
        messages=messages,
        entries=result.completed_entries,
        wall_seconds=round(wall, 4),
        events_per_sec=round(events / wall, 1),
        messages_per_sec=round(messages / wall, 1),
        messages_per_entry=round(result.messages_per_entry, 4),
        bound_messages_per_entry=bound,
        peak_rss_kb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        scheduler=engaged,
        node_backend=engaged_backend,
    )


def determinism_fingerprint() -> Dict[str, Dict[str, Any]]:
    """Fixed-seed 50-node runs whose metrics must replay byte-identically.

    Two latency models are exercised, both on the observed (metrics-attached)
    network path the seed recording used: constant latency and seeded
    uniform-random latency (the per-channel FIFO clamp).  The returned
    structure is compared against the values recorded from the seed engine;
    :func:`fast_path_consistent` separately pins the unobserved fast path to
    the same replay.
    """
    topology = star(50)
    workload = WorkloadGenerator(topology.nodes, seed=42).poisson(
        total_requests=200, mean_interarrival=2.0
    )
    out: Dict[str, Dict[str, Any]] = {}
    for label, latency in (
        ("constant", ConstantLatency(1.0)),
        (
            "uniform",
            UniformLatency(0.1, 2.0, rng=SeededRNG(7, label="bench-latency")),
        ),
    ):
        result = run_experiment("dag", topology, workload, latency=latency)
        out[label] = {
            "entry_order": result.entry_order,
            "total_messages": result.total_messages,
            "messages_by_type": result.messages_by_type,
            "finished_at": round(result.finished_at, 9),
            "mean_waiting_time": round(result.mean_waiting_time, 9),
        }
    return out


def schedulers_equivalent() -> bool:
    """Whether the heap and the bucket ring replay byte-identically.

    Two fixed-seed 50-node runs — a lattice-timestamped heavy-demand one
    (the ring's home turf) and an off-lattice Poisson one (which exercises
    the ring's sort-on-touch fallback) — are replayed with each scheduler
    forced, and every observable of the result must match exactly: entry
    order, message counts by type, finish time, mean waiting time.  This is
    the scheduler subsystem's CI gate; `repro sweep`'s deterministic
    documents cross-check the same property over the whole smoke matrix.
    """
    topology = star(50)
    heavy = WorkloadGenerator(topology.nodes, seed=42).heavy_demand(rounds=4)
    poisson = WorkloadGenerator(topology.nodes, seed=43).poisson(
        total_requests=150, mean_interarrival=2.0
    )
    for workload in (heavy, poisson):
        outcomes = []
        for mode in ("heap", "ring"):
            result = run_experiment("dag", topology, workload, scheduler=mode)
            outcomes.append(
                (
                    result.entry_order,
                    result.total_messages,
                    result.messages_by_type,
                    round(result.finished_at, 9),
                    round(result.mean_waiting_time, 9),
                )
            )
        if outcomes[0] != outcomes[1]:
            return False
    return True


def fast_path_consistent() -> bool:
    """Whether the unobserved fast path replays the observed path exactly.

    The recorded seed fingerprint is produced with a metrics collector
    attached (the observed path).  This check closes the remaining gap: the
    same fixed-seed run driven with ``collect_metrics=False`` — lite events,
    ``_deliver_fast``, no ``MessageDelivery`` — must yield the identical
    entry order, message count and finish time.  Together with the seed
    fingerprint this pins the fast path to the seed engine transitively.
    """
    topology = star(50)
    workload = WorkloadGenerator(topology.nodes, seed=42).poisson(
        total_requests=200, mean_interarrival=2.0
    )
    for latency_factory in (
        lambda: ConstantLatency(1.0),
        lambda: UniformLatency(0.1, 2.0, rng=SeededRNG(7, label="bench-latency")),
    ):
        observed = run_experiment("dag", topology, workload, latency=latency_factory())
        fast = run_experiment(
            "dag", topology, workload, latency=latency_factory(), collect_metrics=False
        )
        if (
            fast.entry_order != observed.entry_order
            or fast.total_messages != observed.total_messages
            or round(fast.finished_at, 9) != round(observed.finished_at, 9)
        ):
            return False
    return True


def run_benchmark(
    *,
    matrix: Optional[Sequence[ScenarioSpec]] = None,
    repeat: int = 3,
    seed_baseline: Optional[Dict[str, Any]] = None,
    scheduler: str = "auto",
    node_backend: str = "auto",
    profile: bool = False,
    verify_determinism: bool = True,
    verbose: bool = False,
) -> Dict[str, Any]:
    """Run the matrix and assemble the ``BENCH_throughput.json`` document.

    With ``profile=True`` the measured loop runs under :mod:`cProfile`; the
    top-20 cumulative-time rows go to stderr and into the document's
    ``"profile"`` key so perf work can cite hotspots instead of guessing.
    Rates measured under the profiler are distorted — don't commit or
    ``--check`` a profiled document.  ``verify_determinism=False`` skips the
    rate-independent fingerprint/equivalence replays (the calibration loop
    runs them on its first pass only — they cannot change between passes).
    """
    specs = list(matrix) if matrix is not None else default_matrix()
    scenarios: List[Dict[str, Any]] = []
    profiler = None
    if profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    for spec in specs:
        measured = run_scenario(
            spec, repeat=repeat, scheduler=scheduler, node_backend=node_backend
        )
        scenarios.append(measured.as_dict())
        if verbose:
            print(
                f"{measured.scenario:<22} {measured.events_per_sec:>12,.0f} ev/s  "
                f"{measured.messages_per_sec:>12,.0f} msg/s  "
                f"wall {measured.wall_seconds:.3f}s  "
                f"[{measured.scheduler}/{measured.node_backend}]"
            )
    if profiler is not None:
        profiler.disable()

    document: Dict[str, Any] = {
        "schema": "bench-throughput/v1",
        "generated_by": "repro bench",
        "repeat": repeat,
        "scenarios": scenarios,
    }
    if profiler is not None:
        document["profile"] = _profile_rows(profiler, top=20)

    if verify_determinism:
        fingerprint = determinism_fingerprint()
        document["determinism"] = {
            "fingerprint": fingerprint,
            "fast_path_matches_observed": fast_path_consistent(),
            "schedulers_match": schedulers_equivalent(),
        }

    if seed_baseline is not None:
        document["seed_baseline"] = seed_baseline
        acceptance = _acceptance_summary(scenarios, seed_baseline)
        if acceptance is not None:
            document["acceptance"] = acceptance
        if verify_determinism:
            recorded = seed_baseline.get("fingerprint")
            document["determinism"]["matches_seed"] = recorded == fingerprint
            counts = _counts_match(scenarios, seed_baseline)
            document["determinism"]["scenario_counts_match_seed"] = counts
    return document


def _profile_rows(profiler, *, top: int = 20) -> List[Dict[str, Any]]:
    """Top-N cumulative rows of a cProfile run, also dumped to stderr."""
    import pstats

    stats = pstats.Stats(profiler, stream=sys.stderr)
    stats.sort_stats("cumulative")
    print(f"profile: top {top} functions by cumulative time", file=sys.stderr)
    stats.print_stats(top)
    rows: List[Dict[str, Any]] = []
    for (filename, line, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": f"{filename}:{line}({name})",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
        )
    rows.sort(key=lambda row: -row["cumtime"])
    return rows[:top]


def min_merge_documents(documents: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge benchmark documents into a per-scenario-minimum-rate floor.

    Virtual-time counts (``events``/``messages``/``entries``) must agree
    across the documents (they are deterministic; disagreement means the
    simulation drifted between runs and the merge raises).  Wall-clock fields
    take the slowest run's values, so the merged rates are a conservative
    floor for the regression gate's tolerance check.  Works for both the DAG
    and the baseline documents (their rows share the rate fields).
    """
    if not documents:
        raise ValueError("min_merge_documents needs at least one document")
    merged = copy.deepcopy(documents[0])
    for document in documents[1:]:
        if len(document["scenarios"]) != len(merged["scenarios"]):
            raise ValueError("documents cover different scenario matrices")
        for row, other in zip(merged["scenarios"], document["scenarios"]):
            if row["scenario"] != other["scenario"]:
                raise ValueError(
                    f"scenario order mismatch: {row['scenario']!r} vs "
                    f"{other['scenario']!r}"
                )
            for field in ("events", "messages", "entries"):
                if row[field] != other[field]:
                    raise ValueError(
                        f"{row['scenario']}: {field} {row[field]} != "
                        f"{other[field]} (simulation no longer deterministic?)"
                    )
            if other["events_per_sec"] < row["events_per_sec"]:
                for field in (
                    "events_per_sec",
                    "messages_per_sec",
                    "wall_seconds",
                    "peak_rss_kb",
                ):
                    row[field] = other[field]
    return merged


def run_calibrated_benchmark(
    *,
    matrix: Optional[Sequence[ScenarioSpec]] = None,
    repeat: int = 3,
    runs: int = 4,
    seed_baseline: Optional[Dict[str, Any]] = None,
    scheduler: str = "auto",
    node_backend: str = "auto",
    verbose: bool = False,
) -> Dict[str, Any]:
    """Run the DAG matrix ``runs`` times and min-merge into a committed floor.

    This is how ``BENCH_throughput.json`` is (re)produced (``repro bench
    --calibrate N``): single-run rates on a busy machine are too noisy to
    gate against, so the committed reference records each scenario's minimum
    observed rate.  The acceptance section is recomputed from the merged
    rates; the determinism sections come from the first run (they are
    rate-independent).
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    documents = []
    for index in range(runs):
        if verbose:
            print(f"calibration run {index + 1}/{runs}:")
        documents.append(
            run_benchmark(
                matrix=matrix,
                repeat=repeat,
                seed_baseline=seed_baseline,
                scheduler=scheduler,
                node_backend=node_backend,
                # The fingerprint/equivalence replays are rate-independent:
                # run them once, not once per calibration pass.
                verify_determinism=index == 0,
                verbose=verbose,
            )
        )
    merged = min_merge_documents(documents)
    if seed_baseline is not None:
        acceptance = _acceptance_summary(merged["scenarios"], seed_baseline)
        if acceptance is not None:
            merged["acceptance"] = acceptance
    merged["calibration"] = (
        f"per-scenario minimum events/sec across {runs} benchmark runs "
        f"(repeat={repeat} each), making the committed rates a conservative "
        "floor for the regression gate"
    )
    return merged


def check_against_baseline(
    current: Iterable[Dict[str, Any]],
    committed: Dict[str, Any],
    *,
    tolerance: float = 0.2,
) -> List[str]:
    """Compare fresh scenario measurements against a committed document.

    Returns a list of human-readable regression descriptions; empty means the
    run is within ``tolerance`` (relative events/sec drop) everywhere.  Every
    scenario is rate-gated: millisecond-scale cells are trustworthy because
    :func:`measure_fastest` re-times them over a
    :data:`MIN_MEASUREMENT_WINDOW_SECONDS` replay window.
    """
    committed_by_name = {
        row["scenario"]: row for row in committed.get("scenarios", [])
    }
    problems: List[str] = []
    for row in current:
        reference = committed_by_name.get(row["scenario"])
        if reference is None:
            continue
        floor = reference["events_per_sec"] * (1.0 - tolerance)
        if row["events_per_sec"] < floor:
            problems.append(
                f"{row['scenario']}: {row['events_per_sec']:,.0f} ev/s is below "
                f"{floor:,.0f} (committed {reference['events_per_sec']:,.0f} "
                f"- {tolerance:.0%} tolerance)"
            )
        for field in ("events", "messages", "entries"):
            if row[field] != reference[field]:
                problems.append(
                    f"{row['scenario']}: {field} {row[field]} != committed "
                    f"{reference[field]} (simulation no longer deterministic?)"
                )
    return problems


def load_json(path: str) -> Dict[str, Any]:
    """Small helper so CLI and CI share one loader."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _acceptance_summary(
    scenarios: List[Dict[str, Any]], seed_baseline: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    current = next(
        (row for row in scenarios if row["scenario"] == ACCEPTANCE_SCENARIO), None
    )
    seed_row = next(
        (
            row
            for row in seed_baseline.get("throughput", [])
            if row["scenario"] == ACCEPTANCE_SCENARIO
        ),
        None,
    )
    if current is None or seed_row is None:
        return None
    seed_rate = seed_baseline.get("acceptance_events_per_sec", seed_row["events_per_sec"])
    speedup = current["events_per_sec"] / seed_rate
    return {
        "scenario": ACCEPTANCE_SCENARIO,
        "seed_events_per_sec": seed_rate,
        "events_per_sec": current["events_per_sec"],
        "speedup": round(speedup, 2),
        "target_speedup": 3.0,
        "meets_target": speedup >= 3.0,
    }


def _counts_match(
    scenarios: List[Dict[str, Any]], seed_baseline: Dict[str, Any]
) -> bool:
    seed_rows = {
        row["scenario"]: row for row in seed_baseline.get("throughput", [])
    }
    for row in scenarios:
        reference = seed_rows.get(row["scenario"])
        if reference is None:
            continue
        if (
            row["events"] != reference["events"]
            or row["messages"] != reference["messages"]
            or row["entries"] != reference["entries"]
        ):
            return False
    return True
