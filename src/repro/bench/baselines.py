"""Throughput benchmark matrix over the eight baseline algorithms.

``repro bench`` historically measured only the DAG algorithm; the paper's
comparison, however, is against eight baselines, and the comparison sweeps
replay workloads through *their* message machinery too.  This module gives
every baseline the same regression treatment: a frozen scenario matrix run on
the unobserved fast path, a committed ``BENCH_baselines.json`` reference, and
the same CI gate (20% events/sec tolerance, exact virtual-count comparison via
:func:`repro.bench.throughput.check_against_baseline`).

The matrix is intentionally smaller than the DAG one — the broadcast
algorithms cost Θ(N) messages per entry, so their interesting size range ends
far below the DAG's 10k tier.
"""

from __future__ import annotations

import resource
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.theory import upper_bound_messages
from repro.baselines import build_grid_quorums
from repro.bench.throughput import (
    bench_workload_spec,
    measure_fastest,
    min_merge_documents,
)
from repro.spec import ExperimentSpec, TopologySpec
from repro.topology.metrics import diameter

__all__ = [
    "BASELINE_ALGORITHMS",
    "BaselineScenarioResult",
    "BaselineScenarioSpec",
    "baseline_default_matrix",
    "baseline_smoke_matrix",
    "min_merge_documents",  # re-exported; the generic merge lives in throughput
    "run_baseline_benchmark",
    "run_baseline_scenario",
    "run_calibrated_baseline_benchmark",
]

#: Every algorithm of the paper's comparison except the DAG itself, which has
#: its own (larger) matrix in :mod:`repro.bench.throughput`.
BASELINE_ALGORITHMS = (
    "centralized",
    "lamport",
    "ricart-agrawala",
    "carvalho-roucairol",
    "suzuki-kasami",
    "singhal",
    "maekawa",
    "raymond",
)

_SIZES = (25, 100)
_DEMANDS = ("light", "heavy")


@dataclass(frozen=True)
class BaselineScenarioSpec:
    """One cell of the baseline benchmark matrix (star topology throughout)."""

    algorithm: str
    n: int
    demand: str

    @property
    def name(self) -> str:
        return f"{self.algorithm}-star-n{self.n}-{self.demand}"

    def experiment_spec(self, *, scheduler: str = "auto") -> ExperimentSpec:
        """The cell as a canonical :class:`~repro.spec.ExperimentSpec`."""
        return ExperimentSpec(
            algorithm=self.algorithm,
            topology=TopologySpec(kind="star", n=self.n),
            workload=bench_workload_spec(self.demand, self.n),
            scheduler=scheduler,
            seed=0,
            collect_metrics=False,
        )


@dataclass
class BaselineScenarioResult:
    """Measured outcome of one baseline scenario run."""

    scenario: str
    algorithm: str
    n: int
    demand: str
    events: int
    messages: int
    entries: int
    wall_seconds: float
    events_per_sec: float
    messages_per_sec: float
    messages_per_entry: float
    #: The paper's worst-case messages-per-entry bound for this algorithm.
    bound_messages_per_entry: float
    #: Whether the measured average respects the worst-case bound (recorded,
    #: not asserted: the bound is per entry, the measurement an average).
    within_bound: bool
    #: Peak RSS after this scenario (running maximum for in-process runs; use
    #: ``repro sweep`` for true per-scenario child-process numbers).
    peak_rss_kb: int
    #: The engine scheduler the run engaged ("heap" or "ring").
    scheduler: str = "heap"

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


def baseline_default_matrix() -> List[BaselineScenarioSpec]:
    """The full committed matrix: 8 baselines x 2 sizes x 2 demand levels."""
    return [
        BaselineScenarioSpec(algorithm, n, demand)
        for algorithm in BASELINE_ALGORITHMS
        for n in _SIZES
        for demand in _DEMANDS
    ]


def baseline_smoke_matrix() -> List[BaselineScenarioSpec]:
    """The CI subset: every baseline once, n=100, heavy demand.

    n=100 rather than 25 on purpose: more of the 20% events/sec gate's
    signal comes from a single replay (the broadcast algorithms run for
    hundreds of milliseconds here), and the cheap algorithms' rates are
    re-timed over a replay window by ``measure_fastest`` anyway.
    """
    return [
        BaselineScenarioSpec(algorithm, 100, "heavy")
        for algorithm in BASELINE_ALGORITHMS
    ]


def run_baseline_scenario(
    spec: BaselineScenarioSpec, *, repeat: int = 3, scheduler: str = "auto"
) -> BaselineScenarioResult:
    """Run one baseline scenario ``repeat`` times and keep the fastest.

    Mirrors :func:`repro.bench.throughput.run_scenario`: the system is rebuilt
    per repetition (identical virtual outcome every time) and runs with no
    metrics collector so the network's zero-overhead fast path is active.
    """
    experiment = spec.experiment_spec(scheduler=scheduler)
    topology = experiment.topology.build()
    workload = experiment.workload.build(topology, seed=experiment.seed)
    if spec.algorithm == "maekawa":
        # The paper's 7·sqrt(N) assumes projective-plane committees of size
        # sqrt(N); this reproduction substitutes grid quorums (size about
        # 2·sqrt(N) - 1, see repro.baselines.maekawa), so the honest bound
        # uses the actual committee size.  Exposed by this very benchmark:
        # at N=100 the measured heavy-demand average (71.9) exceeds the
        # idealized 7·sqrt(N) = 70 while respecting the grid-quorum bound.
        largest = max(
            len(members) for members in build_grid_quorums(topology.nodes).values()
        )
        bound = 7.0 * (largest - 1)
    else:
        bound = upper_bound_messages(
            spec.algorithm, n=spec.n, diameter=diameter(topology)
        )
    wall, result, events, messages, engaged = measure_fastest(
        lambda: experiment.build_system(topology),
        workload,
        repeat=repeat,
        scheduler=scheduler,
    )
    return BaselineScenarioResult(
        scenario=spec.name,
        algorithm=spec.algorithm,
        n=spec.n,
        demand=spec.demand,
        events=events,
        messages=messages,
        entries=result.completed_entries,
        wall_seconds=round(wall, 4),
        events_per_sec=round(events / wall, 1),
        messages_per_sec=round(messages / wall, 1),
        messages_per_entry=round(result.messages_per_entry, 4),
        bound_messages_per_entry=round(bound, 4),
        within_bound=result.messages_per_entry <= bound + 1e-9,
        peak_rss_kb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        scheduler=engaged,
    )


def run_baseline_benchmark(
    *,
    matrix: Optional[Sequence[BaselineScenarioSpec]] = None,
    repeat: int = 3,
    scheduler: str = "auto",
    verbose: bool = False,
) -> Dict[str, Any]:
    """Run the matrix and assemble the ``BENCH_baselines.json`` document."""
    specs = list(matrix) if matrix is not None else baseline_default_matrix()
    scenarios: List[Dict[str, Any]] = []
    for spec in specs:
        measured = run_baseline_scenario(spec, repeat=repeat, scheduler=scheduler)
        scenarios.append(measured.as_dict())
        if verbose:
            print(
                f"{measured.scenario:<38} {measured.events_per_sec:>12,.0f} ev/s  "
                f"{measured.messages_per_entry:>8.3f} msg/entry  "
                f"wall {measured.wall_seconds:.3f}s  [{measured.scheduler}]"
            )
    return {
        "schema": "bench-baselines/v1",
        "generated_by": "repro bench --baselines",
        "repeat": repeat,
        "scenarios": scenarios,
    }


def run_calibrated_baseline_benchmark(
    *,
    matrix: Optional[Sequence[BaselineScenarioSpec]] = None,
    repeat: int = 3,
    runs: int = 4,
    scheduler: str = "auto",
    verbose: bool = False,
) -> Dict[str, Any]:
    """Run the matrix ``runs`` times and min-merge into a committed floor.

    This is how ``BENCH_baselines.json`` is produced (``repro bench
    --baselines --calibrate N``): single-run rates on a busy machine are too
    noisy to gate against, so the committed reference records each scenario's
    minimum observed rate, annotated in the document's ``calibration`` field.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    documents = []
    for index in range(runs):
        if verbose:
            print(f"calibration run {index + 1}/{runs}:")
        documents.append(
            run_baseline_benchmark(
                matrix=matrix, repeat=repeat, scheduler=scheduler, verbose=verbose
            )
        )
    merged = min_merge_documents(documents)
    merged["calibration"] = (
        f"per-scenario minimum events/sec across {runs} benchmark runs "
        f"(repeat={repeat} each), making the committed rates a conservative "
        "floor for the regression gate"
    )
    return merged
