"""Fault-tier benchmark: degradation under injected faults, recovery to liveness.

Two questions the throughput benchmark cannot answer:

* **Degradation** — under the same injected fault load, how far does each
  algorithm get?  Every cell runs one frozen fault profile against one
  algorithm on the densest fault-free condition (star, heavy demand) and
  records the deterministic outcome: entries completed, unserved nodes, the
  fault-log fingerprint.  The contrast the paper's liveness discussion
  predicts — token loss starves the token algorithms outright, quorum
  starvation stalls (or protocol-errors) the permission-based ones — becomes
  committed data.

* **Recovery** — after killing the token holder, how long until the DAG
  protocol re-achieves liveness via token regeneration
  (:mod:`repro.core.recovery`)?  Measured as ``time_to_liveness``: virtual
  time from the fault that lost the token to the first post-regeneration
  critical-section entry.  Benchmarked at n=50 and at the 100k-node tier —
  the acceptance criterion of the robustness milestone.

Everything deterministic in the document (counts, finish times, fault-log
digests, recovery metrics) is gated exactly by :func:`check_fault_baseline`;
only the events/sec rates carry a tolerance, like the throughput gate.
``BENCH_faults.json`` at the repository root is the committed reference
(regenerate with ``repro bench --faults --write BENCH_faults.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.baselines.base import registry
from repro.sim.faults import FaultController
from repro.spec import FAULT_PROFILES, ExperimentSpec, TopologySpec, WorkloadSpec
from repro.workload.driver import ExperimentDriver

FAULT_BENCH_SCHEMA = "bench-faults/v1"

#: Profiles of the committed degradation matrix — one message-loss profile
#: and the crash of the token holder, the two failure modes Chapter 5's
#: liveness argument distinguishes.
DEGRADATION_PROFILES = ("drop1", "crash-holder")

#: Algorithms of the degradation matrix: every registered algorithm.
DEGRADATION_ALGORITHMS = tuple(registry.names())

#: Node count of the recovery acceptance cell.
RECOVERY_XLARGE_NODES = 100_000


@dataclass(frozen=True)
class FaultScenarioSpec:
    """One cell of the fault benchmark matrix."""

    algorithm: str
    n: int
    profile: str
    rounds: int = 5
    collect_metrics: bool = True

    @property
    def name(self) -> str:
        return f"{self.algorithm}-star-n{self.n}-heavy+{self.profile}"

    def experiment_spec(self) -> ExperimentSpec:
        """The cell as a canonical, shippable :class:`ExperimentSpec`.

        Seed 0 and star/heavy throughout, mirroring the throughput
        benchmark's frozen-cell convention.
        """
        return ExperimentSpec(
            algorithm=self.algorithm,
            topology=TopologySpec(kind="star", n=self.n),
            workload=WorkloadSpec(tier="heavy", rounds=self.rounds),
            seed=0,
            collect_metrics=self.collect_metrics,
            faults=FAULT_PROFILES[self.profile],
        )


def default_fault_matrix() -> List[FaultScenarioSpec]:
    """Degradation cells (every algorithm × profile), the DAG churn cell
    (repeated token-holder kill + restart), plus the recovery cells."""
    matrix = [
        FaultScenarioSpec(algorithm, 50, profile)
        for algorithm in DEGRADATION_ALGORITHMS
        for profile in DEGRADATION_PROFILES
    ]
    matrix.append(FaultScenarioSpec("dag", 50, "crash-churn"))
    # The partition + heal window on one token and one permission algorithm:
    # messages crossing the cut queue (or drop) until the heal, so the gated
    # outcome pins down both the degradation during the window and the full
    # catch-up after it.
    matrix.append(FaultScenarioSpec("dag", 50, "partition-heal"))
    matrix.append(FaultScenarioSpec("ricart-agrawala", 50, "partition-heal"))
    matrix.extend(recovery_matrix())
    return matrix


def recovery_matrix() -> List[FaultScenarioSpec]:
    """The token-regeneration cells: DAG, crash-recover, n=50 and 100k.

    The 100k cell runs one heavy round on the unobserved-metrics path (the
    fault injector keeps the network on the observed delivery path either
    way; dropping the collector just skips per-entry timing statistics).
    """
    return [
        FaultScenarioSpec("dag", 50, "crash-recover"),
        FaultScenarioSpec(
            "dag",
            RECOVERY_XLARGE_NODES,
            "crash-recover",
            rounds=1,
            collect_metrics=False,
        ),
    ]


def smoke_fault_matrix() -> List[FaultScenarioSpec]:
    """CI subset: both profiles on three contrasting algorithms + n=50 recovery."""
    matrix = [
        FaultScenarioSpec(algorithm, 50, profile)
        for algorithm in ("dag", "ricart-agrawala", "maekawa")
        for profile in DEGRADATION_PROFILES
    ]
    matrix.append(FaultScenarioSpec("dag", 50, "partition-heal"))
    matrix.append(FaultScenarioSpec("dag", 50, "crash-recover"))
    return matrix


def run_fault_scenario(
    spec: FaultScenarioSpec, *, scheduler: str = "auto"
) -> Dict[str, Any]:
    """Run one fault cell and return its document row.

    Deterministic outcomes live at the top level of the row; host-dependent
    measurements live under ``"timing"`` (same split as the sweep rows).
    Everything above ``"timing"`` is byte-identical for any ``scheduler``
    choice — the CI gate cross-checks heap against ring on exactly this.
    """
    experiment = spec.experiment_spec()
    topology = experiment.topology.build()
    workload = experiment.workload.build(topology, seed=experiment.seed)
    system = experiment.build_system(topology)
    controller = FaultController(experiment.faults, name=experiment.name)
    driver = ExperimentDriver(
        system, workload, scheduler=scheduler, faults=controller
    )
    start = time.perf_counter()
    result = driver.run(max_events=50_000_000)
    wall = time.perf_counter() - start
    events = system.engine.processed_events
    summary = result.fault_summary or {}
    row: Dict[str, Any] = {
        "scenario": spec.name,
        "algorithm": spec.algorithm,
        "n": spec.n,
        "profile": spec.profile,
        "entries": result.completed_entries,
        "messages": result.total_messages,
        "events": events,
        "finished_at": round(result.finished_at, 9),
        "total_faults": summary.get("total_faults"),
        "fault_log_sha256": summary.get("fault_log_sha256"),
        "unserved_nodes": summary.get("unserved_nodes"),
        "lost_requests": summary.get("lost_requests"),
        "protocol_error": summary.get("protocol_error"),
        "timing": {
            "wall_seconds": round(wall, 4),
            "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
            "scheduler": system.engine.scheduler_kind,
        },
    }
    recovery = summary.get("recovery")
    if recovery is not None:
        row["recovery"] = {
            "token_lost_at": recovery.get("token_lost_at"),
            "regenerated_at": recovery.get("regenerated_at"),
            "new_holder": recovery.get("new_holder"),
            "reissued": recovery.get("reissued"),
            "time_to_liveness": recovery.get("time_to_liveness"),
        }
    return row


def run_fault_benchmark(
    *,
    matrix: Optional[Sequence[FaultScenarioSpec]] = None,
    scheduler: str = "auto",
    verbose: bool = False,
) -> Dict[str, Any]:
    """Run the fault matrix and assemble the ``BENCH_faults.json`` document."""
    specs = list(matrix) if matrix is not None else default_fault_matrix()
    rows: List[Dict[str, Any]] = []
    for spec in specs:
        row = run_fault_scenario(spec, scheduler=scheduler)
        rows.append(row)
        if verbose:
            recovery = row.get("recovery") or {}
            liveness = recovery.get("time_to_liveness")
            detail = (
                f"time-to-liveness {liveness}"
                if liveness is not None
                else f"{row['entries']} entries, {row['unserved_nodes']} unserved"
            )
            print(f"{row['scenario']:<44} {detail}")
    return {
        "schema": FAULT_BENCH_SCHEMA,
        "generated_by": "repro bench --faults",
        "scenarios": rows,
    }


def deterministic_fault_document(document: Dict[str, Any]) -> Dict[str, Any]:
    """The fault-bench document minus host-dependent fields.

    Same contract as the sweep's ``deterministic_document``: two runs of the
    same matrix — any scheduler, any machine — must agree byte-for-byte on
    the canonical JSON of this projection.
    """
    stripped = {
        key: value
        for key, value in document.items()
        if key != "generated_by"
    }
    stripped["scenarios"] = [
        {key: value for key, value in row.items() if key != "timing"}
        for row in document["scenarios"]
    ]
    return stripped


#: Deterministic row fields gated exactly (None-safe equality).
_EXACT_FIELDS = (
    "entries",
    "messages",
    "events",
    "finished_at",
    "total_faults",
    "fault_log_sha256",
    "unserved_nodes",
    "lost_requests",
    "protocol_error",
)
_EXACT_RECOVERY_FIELDS = (
    "token_lost_at",
    "regenerated_at",
    "new_holder",
    "reissued",
    "time_to_liveness",
)


def check_fault_baseline(
    current: Iterable[Dict[str, Any]],
    committed: Dict[str, Any],
    *,
    tolerance: float = 0.5,
) -> List[str]:
    """Compare fresh fault rows against the committed ``BENCH_faults.json``.

    Everything virtual-time (counts, digests, recovery metrics) must match
    *exactly* — a difference means fault replay is no longer deterministic,
    or recovery behaviour changed.  Only events/sec gets a (generous)
    tolerance; fault cells are small, so their rates are noisier than the
    throughput matrix's.
    """
    committed_by_name = {
        row["scenario"]: row for row in committed.get("scenarios", [])
    }
    problems: List[str] = []
    for row in current:
        reference = committed_by_name.get(row["scenario"])
        if reference is None:
            continue
        for field in _EXACT_FIELDS:
            if row.get(field) != reference.get(field):
                problems.append(
                    f"{row['scenario']}: {field} {row.get(field)!r} != committed "
                    f"{reference.get(field)!r} (fault replay no longer "
                    "deterministic?)"
                )
        current_recovery = row.get("recovery")
        committed_recovery = reference.get("recovery")
        if (current_recovery is None) != (committed_recovery is None):
            problems.append(
                f"{row['scenario']}: recovery section "
                f"{'appeared' if current_recovery else 'disappeared'} "
                "relative to the committed document"
            )
        elif current_recovery is not None:
            for field in _EXACT_RECOVERY_FIELDS:
                if current_recovery.get(field) != committed_recovery.get(field):
                    problems.append(
                        f"{row['scenario']}: recovery.{field} "
                        f"{current_recovery.get(field)!r} != committed "
                        f"{committed_recovery.get(field)!r}"
                    )
        reference_rate = (reference.get("timing") or {}).get("events_per_sec")
        current_rate = (row.get("timing") or {}).get("events_per_sec")
        if reference_rate and current_rate is not None:
            floor = reference_rate * (1.0 - tolerance)
            if current_rate < floor:
                problems.append(
                    f"{row['scenario']}: {current_rate:,.0f} ev/s is below "
                    f"{floor:,.0f} (committed {reference_rate:,.0f} "
                    f"- {tolerance:.0%} tolerance)"
                )
    return problems
