"""Construction-only benchmark: what does it cost to *stand up* a scenario?

The throughput benchmark measures the drain; at the million-node tier the
interesting question shifts to the setup path the streaming pipeline
rewrote — topology construction, system (node) construction, and loading the
workload's arrival front into the engine.  This harness times exactly those
three phases and records peak RSS, **without** draining the run, so CI can
smoke-test the 1M tier in a couple of minutes instead of the tens it takes
to replay it.

"Load workload" means what the steady state of the streaming pipeline means:
the driver schedules the first arrival chunk (plus the loader event that will
pull the next chunk); for a materialised workload it is the full bulk load.
The loaded-arrival count is recorded so the document shows which of the two
happened.

The document (``BENCH_xxlarge_setup.fresh.json`` in CI) is informational
plus one hard gate: an optional per-cell wall budget (``--budget-seconds``)
that fails the run when construction regresses past it.
"""

from __future__ import annotations

import resource
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.throughput import ScenarioSpec
from repro.workload.driver import ExperimentDriver

#: Cells below this node count have no interesting setup cost; the default
#: construction matrix keeps only the large-tier cells of whatever matrix
#: the caller selected.
CONSTRUCTION_MIN_NODES = 100_000


def construction_matrix(matrix: Sequence[ScenarioSpec]) -> List[ScenarioSpec]:
    """The subset of ``matrix`` worth construction-benchmarking (large cells)."""
    return [spec for spec in matrix if spec.n >= CONSTRUCTION_MIN_NODES]


def run_setup_scenario(
    spec: ScenarioSpec, *, scheduler: str = "auto", node_backend: str = "auto"
) -> Dict[str, Any]:
    """Build one scenario end to end — topology, workload, system, arrival
    load — timing each phase, without draining a single protocol event."""
    experiment = spec.experiment_spec(scheduler=scheduler, node_backend=node_backend)
    start = time.perf_counter()
    topology = experiment.topology.build()
    topology_seconds = time.perf_counter() - start

    start = time.perf_counter()
    workload = experiment.workload.build(topology, seed=experiment.seed)
    workload_seconds = time.perf_counter() - start

    start = time.perf_counter()
    system = experiment.build_system(topology)
    system_seconds = time.perf_counter() - start

    start = time.perf_counter()
    driver = ExperimentDriver(system, workload, scheduler=scheduler)
    driver._load_arrivals(system.engine)
    load_seconds = time.perf_counter() - start

    total = topology_seconds + workload_seconds + system_seconds + load_seconds
    return {
        "scenario": spec.name,
        "kind": spec.kind,
        "n": spec.n,
        "demand": spec.demand,
        "total_requests": len(workload),
        "streamed": hasattr(workload, "iter_batches"),
        # Includes the streaming loader event when the workload streams.
        "loaded_arrivals": system.engine.pending_events,
        "topology_seconds": round(topology_seconds, 4),
        "workload_seconds": round(workload_seconds, 4),
        "system_seconds": round(system_seconds, 4),
        "load_seconds": round(load_seconds, 4),
        "setup_seconds": round(total, 4),
        "scheduler": system.engine.scheduler_kind,
        "node_backend": system.node_backend,
        #: Process-lifetime peak RSS sampled after this cell (a running
        #: maximum across the run, like the throughput document's field).
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def run_setup_benchmark(
    matrix: Sequence[ScenarioSpec],
    *,
    budget_seconds: Optional[float] = None,
    scheduler: str = "auto",
    node_backend: str = "auto",
    verbose: bool = False,
) -> Dict[str, Any]:
    """Run the construction-only benchmark and assemble its JSON document.

    Args:
        matrix: the cells to stand up (usually ``construction_matrix(...)``).
        budget_seconds: optional per-cell wall budget; cells exceeding it are
            listed under ``"over_budget"`` and flip ``"within_budget"`` to
            ``False`` (the CLI exits non-zero on that).
        scheduler: the driver's ``--scheduler`` choice; affects which store
            the arrival-load phase fills (each row records the engaged kind).
        verbose: print one line per cell as it finishes.
    """
    scenarios: List[Dict[str, Any]] = []
    over_budget: List[str] = []
    for spec in matrix:
        row = run_setup_scenario(spec, scheduler=scheduler, node_backend=node_backend)
        scenarios.append(row)
        if budget_seconds is not None and row["setup_seconds"] > budget_seconds:
            over_budget.append(
                f"{row['scenario']}: setup took {row['setup_seconds']:.1f}s "
                f"(budget {budget_seconds:.1f}s)"
            )
        if verbose:
            print(
                f"{row['scenario']:<24} topology {row['topology_seconds']:>7.2f}s  "
                f"system {row['system_seconds']:>7.2f}s  "
                f"load {row['load_seconds']:>6.2f}s  "
                f"rss {row['peak_rss_kb'] // 1024} MB"
            )
    document: Dict[str, Any] = {
        "schema": "bench-setup/v1",
        "generated_by": "repro bench --setup-only",
        "scenarios": scenarios,
        "within_budget": not over_budget,
    }
    if budget_seconds is not None:
        document["budget_seconds"] = budget_seconds
    if over_budget:
        document["over_budget"] = over_budget
    return document
