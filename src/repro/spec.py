"""Declarative experiment specifications: one serializable description of a run.

The paper's headline result is a comparison matrix — the DAG algorithm
against eight baselines across topologies, sizes and demand tiers — and for
four PRs that matrix was described four different ways: bench cell dicts,
``SweepScenario``, positional ``run_experiment`` arguments, and ad-hoc CLI
flags.  This module collapses them into one canonical value:
:class:`ExperimentSpec`, a frozen, JSON-round-trippable record of *everything*
that determines a run's virtual-time outcome (algorithm, topology, workload,
latency model, seed) plus the two knobs that do not (scheduler choice,
metrics toggle).

Design rules:

* **Specs are data.**  ``canonical_json()`` / ``from_json()`` round-trip
  exactly (``from_json(canonical_json(s)) == s``), so a spec can be committed,
  diffed, and shipped to another machine — cross-machine sweep shards are a
  matter of sending spec JSON.
* **Specs are the construction path, not a parallel one.**  The bench and
  sweep matrices build their cells *through* these builders
  (``TopologySpec.build``, ``WorkloadSpec.build``), so a spec-built scenario
  replays byte-identically to the legacy entry points — CI-gated.
* **Capabilities live on the algorithm, not in the matrix.**  Tier
  eligibility and scheduler auto-selection read
  :meth:`repro.baselines.base.AlgorithmRegistry.capabilities`, declared once
  on each system class, instead of module-level name tuples.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple, Union

from repro.baselines.base import MutexSystem, registry
from repro.core.compact_state import NODE_BACKENDS
from repro.exceptions import ExperimentError, WorkloadError
from repro.sim.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    UniformLatency,
)
from repro.sim.rng import SeededRNG
from repro.sim.schedulers import SCHEDULER_MODES
from repro.topology import balanced_tree, line, random_tree, star
from repro.topology.base import Topology
from repro.workload.generator import WorkloadGenerator
from repro.workload.requests import Workload
from repro.workload.streaming import DEFAULT_CHUNK_REQUESTS, StreamingWorkload

#: Topology families a spec can name.  ``tree`` is the benchmark's frozen
#: balanced binary tree of about ``n`` nodes; ``random`` is a seeded Prüfer
#: tree of exactly ``n`` nodes.
TOPOLOGY_KINDS = ("line", "star", "tree", "random")

#: Workload tiers a spec can name.  The parameterisations are part of the
#: committed bench/sweep contract: extend with new tiers instead of editing
#: existing ones.
WORKLOAD_TIERS = ("light", "heavy", "bursty", "hotspot", "diurnal")

#: Node count at or above which heavy-demand workloads stream (generator
#: batches chunk-loaded by the driver) instead of materialising the request
#: list.  Canonical home of the constant the bench and sweep tiers share.
STREAMING_NODE_THRESHOLD = 500_000

#: Heavy-demand rounds for the streamed (>= :data:`STREAMING_NODE_THRESHOLD`)
#: tiers: two rounds of every-node demand keeps a 1M cell at ~10M events.
XXLARGE_HEAVY_ROUNDS = 2

#: Default heavy-demand rounds for a materialised workload (the DAG
#: benchmark matrix definition; the sweep tier passes 5 explicitly).
DEFAULT_HEAVY_ROUNDS = 10


def _unknown(kind: str, value: Any, known: Tuple[str, ...]) -> str:
    return f"unknown {kind} {value!r}; known: {list(known)}"


def _validated_dict(cls, data: Dict[str, Any], label: str) -> Dict[str, Any]:
    """Filter-free kwargs for ``cls`` from ``data``; unknown keys are errors."""
    if not isinstance(data, dict):
        raise ExperimentError(f"{label} must be a JSON object, got {type(data).__name__}")
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ExperimentError(
            f"{label} has unknown fields {unknown}; expected a subset of {sorted(allowed)}"
        )
    return dict(data)


@dataclass(frozen=True)
class TopologySpec:
    """A named logical topology: family, size, seed, representation.

    ``compact`` mirrors the builders' flag: ``None`` auto-selects the
    array-backed CSR representation at the builders' node threshold, which is
    what every committed tier does.
    """

    kind: str
    n: int
    seed: int = 0
    compact: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ExperimentError(_unknown("topology kind", self.kind, TOPOLOGY_KINDS))
        if self.n < 1:
            raise ExperimentError(f"topology size must be >= 1, got {self.n}")

    def build(self) -> Topology:
        """Construct the topology (the benchmark's frozen families)."""
        if self.kind == "line":
            return line(self.n, compact=self.compact)
        if self.kind == "star":
            return star(self.n, compact=self.compact)
        if self.kind == "tree":
            depth = max(1, (self.n - 1).bit_length() - 1)
            return balanced_tree(2, depth, compact=self.compact)
        return random_tree(self.n, seed=self.seed, compact=self.compact)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "n": self.n, "seed": self.seed, "compact": self.compact}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "TopologySpec":
        return TopologySpec(**_validated_dict(TopologySpec, data, "topology spec"))


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload tier plus the knobs the tiered matrices vary.

    Attributes:
        tier: one of :data:`WORKLOAD_TIERS`.
        rounds: heavy-demand rounds (heavy tier only;
            ``None`` = :data:`DEFAULT_HEAVY_ROUNDS`).
        total_requests: request count for the arrival-process tiers
            (``None`` = twice the node count, the matrix convention).
        streaming: force the streamed (``True``) or materialised (``False``)
            heavy-demand form; ``None`` auto-streams at
            :data:`STREAMING_NODE_THRESHOLD` nodes.
        chunk_requests: streamed batch size (``None`` = the driver default).
    """

    tier: str
    rounds: Optional[int] = None
    total_requests: Optional[int] = None
    streaming: Optional[bool] = None
    chunk_requests: Optional[int] = None

    def __post_init__(self) -> None:
        if self.tier not in WORKLOAD_TIERS:
            raise ExperimentError(_unknown("workload tier", self.tier, WORKLOAD_TIERS))
        if self.rounds is not None and self.tier != "heavy":
            raise ExperimentError(f"rounds only applies to the heavy tier, not {self.tier!r}")
        if self.rounds is not None and self.rounds < 1:
            raise ExperimentError(f"rounds must be >= 1, got {self.rounds}")
        if self.total_requests is not None and self.tier == "heavy":
            raise ExperimentError("the heavy tier is sized by rounds, not total_requests")
        if self.streaming is not None and self.tier != "heavy":
            raise ExperimentError("only the heavy tier has a streamed form")
        if self.chunk_requests is not None and self.chunk_requests < 1:
            raise ExperimentError(f"chunk_requests must be >= 1, got {self.chunk_requests}")

    def build(
        self, topology: Topology, *, seed: int = 0
    ) -> Union[Workload, StreamingWorkload]:
        """Construct the tier's schedule on ``topology`` with ``seed``.

        These parameterisations are the committed bench/sweep tier
        definitions — the legacy ``build_workload`` / ``build_sweep_workload``
        entry points now delegate here, so a spec-built workload is
        request-for-request identical to the historical paths.
        """
        generator = WorkloadGenerator(topology.nodes, seed=seed)
        n = len(topology.nodes)
        requests = self.total_requests if self.total_requests is not None else 2 * n
        if self.tier == "light":
            return generator.poisson(total_requests=requests, mean_interarrival=5.0)
        if self.tier == "heavy":
            rounds = self.rounds if self.rounds is not None else DEFAULT_HEAVY_ROUNDS
            stream = (
                self.streaming
                if self.streaming is not None
                else n >= STREAMING_NODE_THRESHOLD
            )
            if stream:
                chunk = (
                    self.chunk_requests
                    if self.chunk_requests is not None
                    else DEFAULT_CHUNK_REQUESTS
                )
                return generator.heavy_demand_stream(rounds=rounds, chunk_requests=chunk)
            return generator.heavy_demand(rounds=rounds)
        if self.tier == "bursty":
            return generator.bursty(
                total_requests=requests,
                mean_burst_size=8.0,
                burst_interarrival=0.5,
                mean_idle_gap=20.0,
            )
        if self.tier == "hotspot":
            hot = list(topology.nodes)[: max(1, n // 10)]
            return generator.hotspot(
                total_requests=requests,
                hot_nodes=hot,
                hot_fraction=0.8,
                mean_interarrival=2.0,
            )
        # diurnal: one full day/night cycle per ~40 mean interarrivals.
        return generator.diurnal(total_requests=requests)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tier": self.tier,
            "rounds": self.rounds,
            "total_requests": self.total_requests,
            "streaming": self.streaming,
            "chunk_requests": self.chunk_requests,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "WorkloadSpec":
        return WorkloadSpec(**_validated_dict(WorkloadSpec, data, "workload spec"))


#: Latency model kinds a spec can name.
LATENCY_KINDS = ("constant", "uniform", "exponential")


#: Sentinel crash target: resolve "the node currently holding the token" at
#: the crash's fire time (token-based algorithms; falls back to the
#: topology's initial holder when the token is in flight or untracked).
TOKEN_HOLDER = "token-holder"


@dataclass(frozen=True)
class CrashSpec:
    """One crash-stop event: kill ``node`` at virtual ``time``.

    ``node`` is a node id or the :data:`TOKEN_HOLDER` sentinel, resolved when
    the crash fires.  A crashed node neither sends nor receives; messages
    already in flight to it are lost, and messages sent to it while down stay
    lost even if ``restart`` later revives it (crash-stop, not pause — see
    ``FaultInjectingNetwork.restart``).
    """

    node: Union[int, str]
    time: float
    restart: Optional[float] = None

    def __post_init__(self) -> None:
        if isinstance(self.node, str) and self.node != TOKEN_HOLDER:
            raise ExperimentError(
                f"crash target must be a node id or {TOKEN_HOLDER!r}, got {self.node!r}"
            )
        if self.time < 0:
            raise ExperimentError(f"crash time must be >= 0, got {self.time}")
        if self.restart is not None and self.restart <= self.time:
            raise ExperimentError(
                f"restart time {self.restart} must be after the crash time {self.time}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"node": self.node, "time": self.time, "restart": self.restart}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "CrashSpec":
        return CrashSpec(**_validated_dict(CrashSpec, data, "crash spec"))


@dataclass(frozen=True)
class PartitionSpec:
    """One partition window: sever the ``a``/``b`` channel during it.

    Messages sent on a partitioned channel are silently lost (they are not
    queued for the heal).  ``symmetric`` severs both directions; ``heal=None``
    leaves the partition in place for the rest of the run.
    """

    a: int
    b: int
    start: float
    heal: Optional[float] = None
    symmetric: bool = True

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ExperimentError(f"partition endpoints must differ, got {self.a} twice")
        if self.start < 0:
            raise ExperimentError(f"partition start must be >= 0, got {self.start}")
        if self.heal is not None and self.heal <= self.start:
            raise ExperimentError(
                f"heal time {self.heal} must be after the partition start {self.start}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "a": self.a,
            "b": self.b,
            "start": self.start,
            "heal": self.heal,
            "symmetric": self.symmetric,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "PartitionSpec":
        return PartitionSpec(**_validated_dict(PartitionSpec, data, "partition spec"))


@dataclass(frozen=True)
class RecoverySpec:
    """Token-regeneration policy for the DAG protocol after token loss.

    ``delay`` is how long (virtual time) after a crash or a dropped
    permission message the controller first checks for token loss;
    ``check_interval`` is the recheck spacing while a PRIVILEGE is still in
    flight (a token in transit is not lost).  Recovery elects the lowest-id
    live requesting node, reorients every live node's NEXT toward it, and
    re-issues the surviving requests — time-to-liveness is measured from the
    loss to the first critical-section entry after regeneration.
    """

    delay: float = 5.0
    check_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ExperimentError(f"recovery delay must be > 0, got {self.delay}")
        if self.check_interval <= 0:
            raise ExperimentError(
                f"recovery check_interval must be > 0, got {self.check_interval}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"delay": self.delay, "check_interval": self.check_interval}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RecoverySpec":
        return RecoverySpec(**_validated_dict(RecoverySpec, data, "recovery spec"))


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic failure & churn schedule for one experiment.

    Every fault is driven by virtual time or by a ``SeededRNG`` stream derived
    from ``seed`` and the experiment's name, so an identical spec replays
    byte-identically — including the ``FaultLog`` — on any machine, scheduler,
    or sweep worker count.

    Attributes:
        drop_rate: per-message Bernoulli drop probability in ``[0, 1)``,
            drawn at send time from the name-derived stream.
        drop_privilege: drop the first N permission-carrying messages
            (PRIVILEGE and its baseline analogues: grants, replies, acks,
            quorum locks) — the token-loss / permission-starvation probe.
        drop_request: drop the first N request-carrying messages — the
            originator-starvation probe.
        crashes: crash-stop schedule (see :class:`CrashSpec`).
        partitions: partition + heal windows (see :class:`PartitionSpec`).
        recovery: token-regeneration policy (DAG algorithm only).
        worker_crash: sweep-level fault — the child process executing the
            scenario dies before running (exercises the sharded runner's
            crash isolation; no effect on in-process replays).
        seed: fault-stream seed (combined with the experiment name).
    """

    drop_rate: float = 0.0
    drop_privilege: int = 0
    drop_request: int = 0
    crashes: Tuple[CrashSpec, ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()
    recovery: Optional[RecoverySpec] = None
    worker_crash: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        if not 0.0 <= self.drop_rate < 1.0:
            raise ExperimentError(
                f"drop_rate must be in [0, 1), got {self.drop_rate}"
            )
        if self.drop_privilege < 0 or self.drop_request < 0:
            raise ExperimentError(
                "drop_privilege and drop_request must be >= 0, got "
                f"{self.drop_privilege} and {self.drop_request}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "drop_rate": self.drop_rate,
            "drop_privilege": self.drop_privilege,
            "drop_request": self.drop_request,
            "crashes": [crash.to_dict() for crash in self.crashes],
            "partitions": [window.to_dict() for window in self.partitions],
            "recovery": self.recovery.to_dict() if self.recovery is not None else None,
            "worker_crash": self.worker_crash,
            "seed": self.seed,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultSpec":
        payload = _validated_dict(FaultSpec, data, "fault spec")
        payload["crashes"] = tuple(
            CrashSpec.from_dict(entry) for entry in payload.get("crashes") or ()
        )
        payload["partitions"] = tuple(
            PartitionSpec.from_dict(entry) for entry in payload.get("partitions") or ()
        )
        if payload.get("recovery") is not None:
            payload["recovery"] = RecoverySpec.from_dict(payload["recovery"])
        return FaultSpec(**payload)


#: The frozen fault profiles the sweep and bench fault tiers share.  Profile
#: definitions are part of the committed fault-tier contract (scenario names
#: embed the profile, and seeds derive from names): extend with new profiles
#: instead of editing existing ones.
FAULT_PROFILES: Dict[str, FaultSpec] = {
    # Random loss at two rates: every algorithm degrades, but differently —
    # token-based schemes lose the token (one drop can starve everyone),
    # permission-based schemes starve per-request.
    "drop1": FaultSpec(drop_rate=0.01),
    "drop5": FaultSpec(drop_rate=0.05),
    # Targeted loss of the first permission-carrying message: the paper's
    # "a dropped PRIVILEGE starves every later requester" observation,
    # contrasted against the quorum/broadcast baselines.
    "lose-privilege": FaultSpec(drop_privilege=1),
    # Targeted loss of the first request: starves exactly its originator.
    "lose-request": FaultSpec(drop_request=1),
    # Kill whoever holds the token at t=25 (mid-run for the heavy tiers).
    "crash-holder": FaultSpec(crashes=(CrashSpec(node=TOKEN_HOLDER, time=25.0),)),
    # Same crash, but the DAG protocol regenerates the token and recovers.
    "crash-recover": FaultSpec(
        crashes=(CrashSpec(node=TOKEN_HOLDER, time=25.0),),
        recovery=RecoverySpec(delay=5.0),
    ),
    # Sweep-level fault: the child process dies before reporting a row.
    "worker-crash": FaultSpec(worker_crash=True),
    # Sever the hub<->first-leaf channel mid-run, then heal it: messages sent
    # during the window are lost (both directions), traffic after the heal
    # flows again.  On the fault tier's star-n50 heavy condition this probes
    # how each algorithm rides out a transient link outage — the PR 6
    # plumbing (PartitionSpec + heal windows) exercised by a committed
    # profile for the first time.
    "partition-heal": FaultSpec(
        partitions=(PartitionSpec(a=1, b=2, start=5.0, heal=15.0),)
    ),
    # Churn: kill whoever holds the token three times, each crash revived by
    # a restart one time unit later.  Crash-stop freezes the victim's state,
    # so each restart brings the token back with its owner and service
    # resumes — but every crash also strands the requests queued through the
    # victim (messages to a down node are lost), so each cycle serves fewer
    # nodes than the last.  The repeated-failover cost the restart semantics
    # were built for, measured without regeneration masking it.
    "crash-churn": FaultSpec(
        crashes=(
            CrashSpec(node=TOKEN_HOLDER, time=5.0, restart=6.0),
            CrashSpec(node=TOKEN_HOLDER, time=15.0, restart=16.0),
            CrashSpec(node=TOKEN_HOLDER, time=30.0, restart=31.0),
        ),
    ),
}


@dataclass(frozen=True)
class LatencySpec:
    """A serializable latency model choice.

    ``constant`` uses ``value``; ``uniform`` uses ``low``/``high``;
    ``exponential`` uses ``mean``.  Stochastic models draw from a
    ``SeededRNG(seed, label="spec-latency")`` stream so a spec replays
    identically everywhere.
    """

    kind: str = "constant"
    value: float = 1.0
    low: float = 0.1
    high: float = 2.0
    mean: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in LATENCY_KINDS:
            raise ExperimentError(_unknown("latency kind", self.kind, LATENCY_KINDS))

    def build(self) -> LatencyModel:
        if self.kind == "constant":
            return ConstantLatency(self.value)
        if self.kind == "uniform":
            return UniformLatency(
                self.low, self.high, rng=SeededRNG(self.seed, label="spec-latency")
            )
        return ExponentialLatency(
            self.mean, rng=SeededRNG(self.seed, label="spec-latency")
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "value": self.value,
            "low": self.low,
            "high": self.high,
            "mean": self.mean,
            "seed": self.seed,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "LatencySpec":
        return LatencySpec(**_validated_dict(LatencySpec, data, "latency spec"))


@dataclass(frozen=True)
class ObsSpec:
    """The observability toggle shared by simulated and live experiments.

    ``enabled`` turns the :mod:`repro.obs` metrics registry on (off by
    default: the disabled registry hands out no-op instruments, so the hot
    paths keep their instrument calls at near-zero cost).  ``sample_every``
    is the sampling knob — histograms record every Nth observation, stride
    not random, so deterministic replays observe identical sample sets.
    ``trace`` additionally records op lifecycles / simulator trace events
    for Chrome ``trace_event`` export, bounded by ``trace_capacity``.
    """

    enabled: bool = False
    sample_every: int = 1
    trace: bool = False
    trace_capacity: int = 100_000

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ExperimentError(
                f"sample_every must be >= 1, got {self.sample_every}"
            )
        if self.trace_capacity < 1:
            raise ExperimentError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "sample_every": self.sample_every,
            "trace": self.trace,
            "trace_capacity": self.trace_capacity,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ObsSpec":
        return ObsSpec(**_validated_dict(ObsSpec, data, "obs spec"))


@dataclass(frozen=True)
class ExperimentSpec:
    """The canonical, serializable description of one experiment.

    ``build()`` turns the spec into a ready ``(system, workload)`` pair and
    ``run()`` replays it through the experiment driver; ``canonical_json()``
    / ``from_json()`` round-trip the spec exactly, which is what makes
    cross-machine shards and committed example specs possible.

    The fields that determine the virtual-time outcome are ``algorithm``,
    ``topology``, ``workload``, ``latency`` and ``seed``; ``scheduler``
    affects wall clock only (byte-identical replay, CI-gated),
    ``collect_metrics`` selects the observed vs the zero-overhead network
    path (identical event order, per-entry timing statistics only on the
    observed one), and ``node_backend`` picks object nodes vs the columnar
    array core for algorithms that declare both (identical event order,
    CI-gated by the ``backend-identity`` matrix).
    """

    algorithm: str
    topology: TopologySpec
    workload: WorkloadSpec
    latency: Optional[LatencySpec] = None
    scheduler: str = "auto"
    seed: int = 0
    collect_metrics: bool = True
    record_trace: bool = False
    faults: Optional[FaultSpec] = None
    node_backend: str = "auto"
    obs: Optional[ObsSpec] = None

    def __post_init__(self) -> None:
        if self.algorithm not in registry.names():
            raise ExperimentError(
                _unknown("algorithm", self.algorithm, tuple(registry.names()))
            )
        if self.scheduler not in SCHEDULER_MODES:
            raise ExperimentError(
                _unknown("scheduler", self.scheduler, SCHEDULER_MODES)
            )
        if self.node_backend not in NODE_BACKENDS:
            raise ExperimentError(
                _unknown("node backend", self.node_backend, NODE_BACKENDS)
            )
        supported = registry.capabilities(self.algorithm).node_backends
        if self.node_backend == "compact" and "compact" not in supported:
            # Reject at spec construction (which covers `parse` and every
            # CLI/bench/sweep entry point) instead of crashing a worker later.
            raise ExperimentError(
                f"algorithm {self.algorithm!r} only supports node backends "
                f"{list(supported)}; node_backend='compact' requires an "
                "algorithm with a columnar state implementation (currently: "
                "'dag')"
            )
        if (
            self.faults is not None
            and self.faults.recovery is not None
            and self.algorithm != "dag"
        ):
            # Token regeneration reorients NEXT/FOLLOW scalars, which only
            # the paper's protocol has; the baselines fail as published.
            raise ExperimentError(
                "fault recovery (token regeneration) is implemented for the "
                f"'dag' algorithm only, not {self.algorithm!r}"
            )

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """The matrix-style cell name (also the sweep's seed-derivation key)."""
        return (
            f"{self.algorithm}-{self.topology.kind}-n{self.topology.n}"
            f"-{self.workload.tier}"
        )

    @property
    def capabilities(self):
        """The algorithm's declared :class:`AlgorithmCapabilities`."""
        return registry.capabilities(self.algorithm)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def build_system(self, topology: Topology) -> MutexSystem:
        """Construct the system under test on an already-built topology.

        Split out from :meth:`build` because benchmark repetition loops
        rebuild the system per replay while sharing one topology and one
        workload.
        """
        system_class = registry.get(self.algorithm)
        kwargs: Dict[str, Any] = {}
        if self.faults is not None:
            # A fault-carrying spec runs on the injecting network (always the
            # observed delivery path; fault runs trade the fast path for
            # interception).  The controller arming the schedule is built by
            # ExperimentDriver.from_spec.
            from repro.sim.faults import FaultInjectingNetwork

            kwargs["network_factory"] = FaultInjectingNetwork
        if "compact" in registry.capabilities(self.algorithm).node_backends:
            # Only multi-backend systems accept the keyword; object-only
            # baselines keep their historical constructor signature.
            kwargs["node_backend"] = self.node_backend
        return system_class(
            topology,
            latency=self.latency.build() if self.latency is not None else None,
            record_trace=self.record_trace,
            collect_metrics=self.collect_metrics,
            **kwargs,
        )

    def build(self) -> Tuple[MutexSystem, Union[Workload, StreamingWorkload]]:
        """Construct the ``(system, workload)`` pair the spec describes."""
        topology = self.topology.build()
        workload = self.workload.build(topology, seed=self.seed)
        return self.build_system(topology), workload

    def run(self, *, max_events: int = 5_000_000):
        """Build and replay the experiment; returns an ``ExperimentResult``.

        Delegates to ``ExperimentDriver.from_spec`` so fault-carrying specs
        get their :class:`~repro.sim.faults.FaultController` armed in exactly
        one place.
        """
        from repro.workload.driver import ExperimentDriver

        return ExperimentDriver.from_spec(self).run(max_events=max_events)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "experiment-spec/v1",
            "algorithm": self.algorithm,
            "topology": self.topology.to_dict(),
            "workload": self.workload.to_dict(),
            "latency": self.latency.to_dict() if self.latency is not None else None,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "collect_metrics": self.collect_metrics,
            "record_trace": self.record_trace,
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "node_backend": self.node_backend,
            "obs": self.obs.to_dict() if self.obs is not None else None,
        }

    def canonical_json(self) -> str:
        """The spec's canonical serialisation (stable key order, one form)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ExperimentSpec":
        if not isinstance(data, dict):
            raise ExperimentError(
                f"experiment spec must be a JSON object, got {type(data).__name__}"
            )
        payload = dict(data)
        schema = payload.pop("schema", "experiment-spec/v1")
        if schema != "experiment-spec/v1":
            raise ExperimentError(f"unknown experiment spec schema {schema!r}")
        payload = _validated_dict(ExperimentSpec, payload, "experiment spec")
        if "topology" not in payload or "workload" not in payload:
            raise ExperimentError(
                "experiment spec needs at least algorithm, topology and workload"
            )
        payload["topology"] = TopologySpec.from_dict(payload["topology"])
        payload["workload"] = WorkloadSpec.from_dict(payload["workload"])
        if payload.get("latency") is not None:
            payload["latency"] = LatencySpec.from_dict(payload["latency"])
        if payload.get("faults") is not None:
            payload["faults"] = FaultSpec.from_dict(payload["faults"])
        if payload.get("obs") is not None:
            payload["obs"] = ObsSpec.from_dict(payload["obs"])
        return ExperimentSpec(**payload)

    @staticmethod
    def from_json(text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"experiment spec is not valid JSON: {exc}") from None
        return ExperimentSpec.from_dict(data)

    @staticmethod
    def load(path: str) -> "ExperimentSpec":
        """Read a spec from a JSON file (the ``repro run --spec`` loader)."""
        with open(path, "r", encoding="utf-8") as handle:
            return ExperimentSpec.from_json(handle.read())

    def save(self, path: str) -> None:
        """Write the spec to ``path`` in canonical form."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.canonical_json())

    # ------------------------------------------------------------------ #
    # CLI shorthand
    # ------------------------------------------------------------------ #
    @staticmethod
    def parse(
        algorithm: str,
        topology: str,
        tier: str,
        *,
        seed: int = 0,
        scheduler: str = "auto",
        collect_metrics: bool = True,
        node_backend: str = "auto",
    ) -> "ExperimentSpec":
        """Build a spec from the CLI shorthand ``ALGO KIND:N TIER[:ROUNDS]``.

        Examples: ``parse("dag", "star:1000", "heavy")``,
        ``parse("raymond", "random:64:7", "diurnal")`` (the third topology
        field is the random-tree seed), ``parse("dag", "line:50",
        "heavy:5")`` (explicit heavy rounds).
        """
        topo_parts = topology.split(":")
        if len(topo_parts) < 2 or len(topo_parts) > 3:
            raise ExperimentError(
                f"topology shorthand {topology!r} is not KIND:N or KIND:N:SEED"
            )
        kind = topo_parts[0]
        try:
            n = int(topo_parts[1])
            topo_seed = int(topo_parts[2]) if len(topo_parts) == 3 else 0
        except ValueError:
            raise ExperimentError(
                f"topology shorthand {topology!r}: size and seed must be integers"
            ) from None
        tier_parts = tier.split(":")
        rounds: Optional[int] = None
        if len(tier_parts) == 2:
            try:
                rounds = int(tier_parts[1])
            except ValueError:
                raise ExperimentError(
                    f"workload shorthand {tier!r}: rounds must be an integer"
                ) from None
        elif len(tier_parts) != 1:
            raise ExperimentError(
                f"workload shorthand {tier!r} is not TIER or TIER:ROUNDS"
            )
        return ExperimentSpec(
            algorithm=algorithm,
            topology=TopologySpec(kind=kind, n=n, seed=topo_seed),
            workload=WorkloadSpec(tier=tier_parts[0], rounds=rounds),
            scheduler=scheduler,
            seed=seed,
            collect_metrics=collect_metrics,
            node_backend=node_backend,
        )


def run_spec(spec: ExperimentSpec, *, max_events: int = 5_000_000):
    """Function form of :meth:`ExperimentSpec.run` (mirrors ``run_experiment``)."""
    return spec.run(max_events=max_events)


#: Socket families the networked runtime can serve on.
SOCKET_KINDS = ("unix", "tcp")


@dataclass(frozen=True)
class ShardCrashSpec:
    """One live-service crash: shard ``shard`` calls ``os._exit`` at wall
    time ``at`` (seconds after it starts serving).

    The runtime twin of :class:`CrashSpec` — same declarative shape, real
    wall clock instead of virtual time, a whole worker process instead of a
    simulated node.
    """

    shard: int
    at: float

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ExperimentError(f"crash shard must be >= 0, got {self.shard}")
        if self.at <= 0:
            raise ExperimentError(f"crash time must be > 0, got {self.at}")

    def to_dict(self) -> Dict[str, Any]:
        return {"shard": self.shard, "at": self.at}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ShardCrashSpec":
        return ShardCrashSpec(**_validated_dict(ShardCrashSpec, data, "shard crash spec"))


@dataclass(frozen=True)
class RuntimeFaultSpec:
    """Deterministic failure schedule for the networked lock service.

    The live-service counterpart of :class:`FaultSpec`: crashes fire on a
    wall-clock schedule inside the shard processes, and ``drop_rate``
    discards incoming client frames from a ``SeededRNG`` stream derived from
    ``seed`` and the shard index — so a fault run is as declarative and
    replayable as a simulated one (modulo real-scheduler timing).

    Attributes:
        crashes: shard kill schedule (see :class:`ShardCrashSpec`).
        drop_rate: per-frame Bernoulli drop probability in ``[0, 1)``; a
            dropped frame is simply never answered, which is what exercises
            the client's deadline + retry path.  Because nothing ever
            answers a dropped frame, any client driving a ``drop_rate``
            service **must** set ``op_timeout`` (lockbench scenarios enforce
            this at construction; control-plane calls like ``stats`` carry a
            built-in deadline either way).
        seed: drop-stream seed (combined with the shard index).
    """

    crashes: Tuple[ShardCrashSpec, ...] = ()
    drop_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        if not 0.0 <= self.drop_rate < 1.0:
            raise ExperimentError(f"drop_rate must be in [0, 1), got {self.drop_rate}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "crashes": [crash.to_dict() for crash in self.crashes],
            "drop_rate": self.drop_rate,
            "seed": self.seed,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RuntimeFaultSpec":
        payload = _validated_dict(RuntimeFaultSpec, data, "runtime fault spec")
        payload["crashes"] = tuple(
            ShardCrashSpec.from_dict(entry) for entry in payload.get("crashes") or ()
        )
        return RuntimeFaultSpec(**payload)


@dataclass(frozen=True)
class RuntimeSpec:
    """The spec-to-runtime bridge: one description of a networked lock service.

    The simulator measures the protocol in virtual time; the runtime
    (:mod:`repro.runtime.service`) serves it over real sockets.  Both are
    driven by the *same* names: ``algorithm`` is a registry name (the runtime
    implements the paper's ``dag`` protocol) and ``topology`` is the standard
    :class:`TopologySpec` — it shapes the per-lock-key token tree exactly as
    it shapes a simulated system, so ``dag`` + ``star:8`` means the same
    thing under ``repro run`` and under ``repro lockbench``.

    Attributes:
        algorithm: registry algorithm name; must be token-based and
            implemented by the asyncio runtime (currently ``"dag"``).
        topology: the per-lock-key agent tree (kind/size/seed), built through
            :meth:`TopologySpec.build` like every simulated topology.
        shards: worker processes the lock namespace is consistent-hashed
            across.
        socket: ``"unix"`` or ``"tcp"`` (see :data:`SOCKET_KINDS`).
        faults: optional live-service failure schedule (shard crashes,
            frame drops) — see :class:`RuntimeFaultSpec`.
        heartbeat_interval: seconds between a shard's heartbeats to the
            cluster supervisor.
        miss_window: seconds of heartbeat silence after which the supervisor
            declares a shard dead (process exits are detected immediately via
            the process sentinel; the window only catches hangs).
    """

    algorithm: str = "dag"
    topology: TopologySpec = TopologySpec(kind="star", n=8)
    shards: int = 2
    socket: str = "unix"
    faults: Optional[RuntimeFaultSpec] = None
    heartbeat_interval: float = 0.1
    miss_window: float = 2.0
    obs: Optional[ObsSpec] = None

    def __post_init__(self) -> None:
        if self.algorithm not in registry.names():
            raise ExperimentError(
                _unknown("algorithm", self.algorithm, tuple(registry.names()))
            )
        if self.algorithm != "dag":
            # The asyncio node runtime implements the paper's protocol; the
            # baselines have no AsyncNode counterparts (yet).
            raise ExperimentError(
                "the networked runtime implements the 'dag' algorithm only, "
                f"not {self.algorithm!r}"
            )
        if self.shards < 1:
            raise ExperimentError(f"shards must be >= 1, got {self.shards}")
        if self.socket not in SOCKET_KINDS:
            raise ExperimentError(_unknown("socket kind", self.socket, SOCKET_KINDS))
        if self.topology.n < 2:
            raise ExperimentError(
                "a lock key's token tree needs >= 2 agent nodes, got "
                f"{self.topology.n}"
            )
        if self.heartbeat_interval <= 0:
            raise ExperimentError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.miss_window <= self.heartbeat_interval:
            raise ExperimentError(
                f"miss_window ({self.miss_window}) must exceed the heartbeat "
                f"interval ({self.heartbeat_interval})"
            )
        for crash in self.faults.crashes if self.faults is not None else ():
            if crash.shard >= self.shards:
                raise ExperimentError(
                    f"crash targets shard {crash.shard} but the cluster has "
                    f"shards 0..{self.shards - 1}"
                )

    @property
    def name(self) -> str:
        """Matrix-style identity, mirroring :attr:`ExperimentSpec.name`."""
        return (
            f"{self.algorithm}-{self.topology.kind}-n{self.topology.n}"
            f"-s{self.shards}-{self.socket}"
        )

    def build_lock_topology(self) -> Topology:
        """The token tree one lock key runs on (the simulator's builders)."""
        return self.topology.build()

    # ------------------------------------------------------------------ #
    # serialization (same conventions as ExperimentSpec)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "runtime-spec/v1",
            "algorithm": self.algorithm,
            "topology": self.topology.to_dict(),
            "shards": self.shards,
            "socket": self.socket,
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "heartbeat_interval": self.heartbeat_interval,
            "miss_window": self.miss_window,
            "obs": self.obs.to_dict() if self.obs is not None else None,
        }

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RuntimeSpec":
        if not isinstance(data, dict):
            raise ExperimentError(
                f"runtime spec must be a JSON object, got {type(data).__name__}"
            )
        payload = dict(data)
        schema = payload.pop("schema", "runtime-spec/v1")
        if schema != "runtime-spec/v1":
            raise ExperimentError(f"unknown runtime spec schema {schema!r}")
        payload = _validated_dict(RuntimeSpec, payload, "runtime spec")
        if "topology" in payload:
            payload["topology"] = TopologySpec.from_dict(payload["topology"])
        if payload.get("faults") is not None:
            payload["faults"] = RuntimeFaultSpec.from_dict(payload["faults"])
        if payload.get("obs") is not None:
            payload["obs"] = ObsSpec.from_dict(payload["obs"])
        return RuntimeSpec(**payload)

    @staticmethod
    def from_json(text: str) -> "RuntimeSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"runtime spec is not valid JSON: {exc}") from None
        return RuntimeSpec.from_dict(data)

    @staticmethod
    def load(path: str) -> "RuntimeSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return RuntimeSpec.from_json(handle.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.canonical_json())
