"""Sharded multi-process experiment sweeps.

This package turns the paper's algorithm comparison into a scalable harness:
the full matrix (9 algorithms x topology families x node counts x workload
tiers, :mod:`repro.sweep.matrix`) is fanned out over a pool of child
processes (:mod:`repro.sweep.runner`), with each scenario executed in its own
process (:mod:`repro.sweep.worker`) for crash isolation and true per-scenario
peak-RSS measurement.  Merged results are deterministic regardless of worker
count or scheduling; ``repro sweep`` is the CLI entry point.
"""

from repro.sweep.matrix import (
    FAULT_TIER_PROFILES,
    LARGE_TIER_ALGORITHMS,
    SPEC_SHARD_SCHEMA,
    SWEEP_ALGORITHMS,
    XXLARGE_TIER_ALGORITHMS,
    SweepScenario,
    build_sweep_topology,
    build_sweep_workload,
    default_sweep_matrix,
    fault_sweep_matrix,
    large_sweep_matrix,
    load_spec_shard,
    scenario_seed,
    smoke_sweep_matrix,
    sweep_workload_spec,
    validate_algorithms,
    write_spec_shard,
    xlarge_sweep_matrix,
    xxlarge_sweep_matrix,
)
from repro.sweep.runner import (
    SCHEMA,
    canonical_json,
    deterministic_document,
    merge_documents,
    run_sweep,
    write_document,
)
from repro.sweep.worker import (
    CRASH_ENV,
    CRASH_EXIT_CODE,
    execute_scenario,
)

__all__ = [
    "FAULT_TIER_PROFILES",
    "LARGE_TIER_ALGORITHMS",
    "SPEC_SHARD_SCHEMA",
    "SWEEP_ALGORITHMS",
    "XXLARGE_TIER_ALGORITHMS",
    "SweepScenario",
    "build_sweep_topology",
    "build_sweep_workload",
    "default_sweep_matrix",
    "fault_sweep_matrix",
    "large_sweep_matrix",
    "load_spec_shard",
    "scenario_seed",
    "smoke_sweep_matrix",
    "sweep_workload_spec",
    "validate_algorithms",
    "write_spec_shard",
    "xlarge_sweep_matrix",
    "xxlarge_sweep_matrix",
    "SCHEMA",
    "canonical_json",
    "deterministic_document",
    "merge_documents",
    "run_sweep",
    "write_document",
    "CRASH_ENV",
    "CRASH_EXIT_CODE",
    "execute_scenario",
]
