"""Child-process execution of one sweep scenario.

Every scenario runs in a fresh child process, which buys three things the
in-process benchmark harness cannot provide:

* **peak-RSS isolation** — ``ru_maxrss`` in a fresh child is a true
  per-scenario peak, not a running maximum across the whole sweep;
* **crash isolation** — a scenario that segfaults, OOMs, or trips a protocol
  assertion takes down only its own process; the parent records the failure
  and the rest of the matrix completes;
* **determinism** — each child rebuilds its entire system from the scenario
  spec and a name-derived seed, so no state leaks between cells.

The module-level entry points are picklable, so the runner works under any
``multiprocessing`` start method (``fork``, ``spawn``, ``forkserver``).
"""

from __future__ import annotations

import hashlib
import os
import resource
import time
import traceback
from typing import Any, Dict

from repro.spec import FAULT_PROFILES
from repro.sweep.matrix import SweepScenario
from repro.topology.metrics import diameter
from repro.workload.driver import ExperimentDriver

#: Deprecated fault-injection hook for the crash-isolation tests: when this
#: environment variable names a scenario, its child process dies with
#: :data:`CRASH_EXIT_CODE` before running anything.  Superseded by the
#: structured path — a scenario whose fault profile sets
#: ``FaultSpec.worker_crash`` (the ``"worker-crash"`` profile) — and kept as
#: an alias for one release; the runner warns when it is set.
CRASH_ENV = "REPRO_SWEEP_CRASH_SCENARIO"
CRASH_EXIT_CODE = 17

#: Event budget per scenario; generous because the 10k-node cells are large.
MAX_EVENTS_PER_SCENARIO = 50_000_000


def _entry_order_digest(entry_order) -> str:
    """Compact fingerprint of the full critical-section entry order."""
    joined = ",".join(str(node) for node in entry_order)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def execute_scenario(spec: SweepScenario) -> Dict[str, Any]:
    """Run one scenario in the *current* process and return its result row.

    The row separates deterministic virtual-time outcomes (counts, per-entry
    costs, the entry-order digest) from host-dependent measurements, which
    live under the ``"timing"`` key so the merged document can be compared
    byte-for-byte across runs and worker counts after stripping timing.
    """
    # The scenario's canonical ExperimentSpec is the construction path: the
    # same builders a spec JSON shipped to another machine would run.
    experiment = spec.experiment_spec()
    topology = experiment.topology.build()
    workload = experiment.workload.build(topology, seed=experiment.seed)
    start = time.perf_counter()
    system = experiment.build_system(topology)
    faults = None
    if experiment.faults is not None:
        from repro.sim.faults import FaultController

        # Named after the ExperimentSpec (not the sweep row) so the injected
        # fault stream is identical to a `repro run --spec` replay of the
        # exported shard — the byte-identity CI gate depends on it.
        faults = FaultController(experiment.faults, name=experiment.name)
    driver = ExperimentDriver(
        system, workload, scheduler=experiment.scheduler, faults=faults
    )
    result = driver.run(max_events=MAX_EVENTS_PER_SCENARIO)
    wall = time.perf_counter() - start
    events = system.engine.processed_events
    row: Dict[str, Any] = {
        "scenario": spec.name,
        "algorithm": spec.algorithm,
        "kind": spec.kind,
        "n": spec.n,
        "workload": spec.workload,
        "seed": spec.seed,
        "status": "ok",
        "entries": result.completed_entries,
        "messages": result.total_messages,
        "events": events,
        "messages_per_entry": round(result.messages_per_entry, 4),
        "messages_by_type": result.messages_by_type,
        "mean_waiting_time": (
            round(result.mean_waiting_time, 9)
            if result.mean_waiting_time is not None
            else None
        ),
        "max_sync_delay": result.max_sync_delay,
        "entry_order_sha256": _entry_order_digest(result.entry_order),
        "finished_at": round(result.finished_at, 9),
        "topology_diameter": diameter(topology),
        "timing": {
            "wall_seconds": round(wall, 4),
            "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            # Under "timing" on purpose: the engaged scheduler affects wall
            # clock only, and deterministic documents strip this key — which
            # is exactly what lets CI diff heap vs ring runs byte-for-byte.
            "scheduler": system.engine.scheduler_kind,
            # Same reasoning: the node backend changes how fast state is
            # stored and touched, never what happens — the backend-identity
            # CI matrix diffs object vs compact deterministic documents.
            "node_backend": system.node_backend,
        },
    }
    if spec.faults is not None:
        # Added only on fault cells so fault-free documents stay byte-
        # identical to earlier releases.
        row["fault_profile"] = spec.faults
        row["faults"] = result.fault_summary
    return row


def error_row(spec: SweepScenario, status: str, **extra: Any) -> Dict[str, Any]:
    """A result row for a scenario that did not finish normally."""
    row: Dict[str, Any] = {
        "scenario": spec.name,
        "algorithm": spec.algorithm,
        "kind": spec.kind,
        "n": spec.n,
        "workload": spec.workload,
        "seed": spec.seed,
        "status": status,
        "timing": {},
    }
    if spec.faults is not None:
        row["fault_profile"] = spec.faults
    row.update(extra)
    return row


def child_main(spec_dict: Dict[str, Any], connection) -> None:
    """Entry point of the per-scenario child process.

    Sends exactly one result row back through ``connection``; an uncaught
    exception becomes an ``"error"`` row, so only a hard process death (the
    crash-isolation case) leaves the parent without a row.
    """
    spec = SweepScenario.from_dict(spec_dict)
    if spec.faults is not None and FAULT_PROFILES[spec.faults].worker_crash:
        # The structured worker-crash fault: the harness-level analogue of a
        # node crash, used by the crash-isolation tests.
        os._exit(CRASH_EXIT_CODE)
    if os.environ.get(CRASH_ENV) == spec.name:
        # Deprecated alias for the structured path above.
        os._exit(CRASH_EXIT_CODE)
    try:
        row = execute_scenario(spec)
    except BaseException as exc:
        # Truncated: a row larger than the OS pipe buffer would block the
        # child in send() forever and hang the parent's sentinel wait.
        row = error_row(
            spec,
            "error",
            error=f"{type(exc).__name__}: {exc}"[:2000],
            traceback=traceback.format_exc(limit=10)[:8000],
        )
    connection.send(row)
    connection.close()
