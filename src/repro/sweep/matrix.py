"""The sweep scenario matrix: algorithm x topology x size x workload tier.

The paper's headline result is a *comparison*: the DAG algorithm against the
classical mutual-exclusion baselines under identical workloads.  This module
defines that comparison as data — one :class:`SweepScenario` per cell of the
matrix — so the sharded runner can execute cells in any order, in any process,
and still produce the same merged result.

Determinism is anchored per scenario, not per run: every scenario derives its
workload seed from its own name (:func:`scenario_seed`), so the virtual-time
outcome of a cell is independent of which worker executes it, how many workers
exist, and what ran before it.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.throughput import (
    STREAMING_NODE_THRESHOLD,
    XXLARGE_HEAVY_ROUNDS,
    build_topology,
)
from repro.exceptions import WorkloadError
from repro.topology.base import Topology
from repro.workload.generator import WorkloadGenerator
from repro.workload.requests import Workload

#: All nine algorithms of the paper's comparison (eight baselines + the DAG).
SWEEP_ALGORITHMS = (
    "centralized",
    "lamport",
    "ricart-agrawala",
    "carvalho-roucairol",
    "suzuki-kasami",
    "singhal",
    "maekawa",
    "raymond",
    "dag",
)

#: Algorithms cheap enough (O(1)/O(D) messages per entry) for the 10k tier.
LARGE_TIER_ALGORITHMS = ("centralized", "raymond", "dag")

#: Algorithms that also fit the 1M-node tier's *memory* budget.  Message
#: scalability is no longer the only axis there: Raymond keeps a FIFO deque
#: per node (~600 bytes each, ~600 MB of empty queues at a million nodes —
#: exactly the per-node storage cost the paper's Section 6.4 comparison
#: holds against it), so the xxlarge tier runs the two algorithms whose
#: per-node state is O(1) scalars.
XXLARGE_TIER_ALGORITHMS = ("centralized", "dag")

_TOPOLOGY_KINDS = ("line", "star", "tree")
_SIZES = (10, 50)
_WORKLOAD_TIERS = ("light", "heavy", "bursty", "hotspot")


def scenario_seed(name: str) -> int:
    """Deterministic per-scenario workload seed derived from the name alone.

    Keeping the seed a pure function of the scenario name makes every cell's
    virtual-time outcome independent of worker scheduling: a scenario run
    alone, first, last, or in any child process always replays the same
    workload.
    """
    digest = hashlib.sha256(f"sweep:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class SweepScenario:
    """One cell of the sweep matrix.

    ``collect_metrics=False`` switches the cell to the network's unobserved
    fast path (no per-entry timing statistics), which the 10k-node tier uses
    to stay in the seconds range.  ``scheduler`` picks the engine's
    pending-event store ("auto"/"heap"/"ring"); it affects wall clock only —
    the virtual-time outcome is byte-identical for every value, which the CI
    smoke job cross-checks by diffing heap and ring deterministic documents.
    It deliberately does not contribute to :attr:`name` (and therefore the
    seed), so forced-scheduler runs replay the exact same workloads.
    """

    algorithm: str
    kind: str
    n: int
    workload: str
    collect_metrics: bool = True
    scheduler: str = "auto"

    @property
    def name(self) -> str:
        return f"{self.algorithm}-{self.kind}-n{self.n}-{self.workload}"

    @property
    def seed(self) -> int:
        return scenario_seed(self.name)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form, picklable across process start methods."""
        return asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SweepScenario":
        return SweepScenario(**data)


def build_sweep_workload(
    topology: Topology, tier: str, *, seed: int
) -> Workload:
    """Construct the workload for one tier on one topology.

    Tier definitions are part of the sweep contract: changing them changes
    every committed sweep result, so extend with new tiers instead of editing
    existing ones.
    """
    generator = WorkloadGenerator(topology.nodes, seed=seed)
    n = len(topology.nodes)
    if tier == "light":
        return generator.poisson(total_requests=2 * n, mean_interarrival=5.0)
    if tier == "heavy":
        if n >= STREAMING_NODE_THRESHOLD:
            # The 1M tier streams its arrivals (bounded RSS); the round count
            # matches the bench tier's streamed heavy definition.
            return generator.heavy_demand_stream(rounds=XXLARGE_HEAVY_ROUNDS)
        return generator.heavy_demand(rounds=5)
    if tier == "bursty":
        return generator.bursty(
            total_requests=2 * n,
            mean_burst_size=8.0,
            burst_interarrival=0.5,
            mean_idle_gap=20.0,
        )
    if tier == "hotspot":
        hot = list(topology.nodes)[: max(1, n // 10)]
        return generator.hotspot(
            total_requests=2 * n,
            hot_nodes=hot,
            hot_fraction=0.8,
            mean_interarrival=2.0,
        )
    raise WorkloadError(f"unknown sweep workload tier {tier!r}")


def build_sweep_topology(kind: str, n: int) -> Topology:
    """The sweep shares the benchmark's frozen topology families."""
    return build_topology(kind, n)


def default_sweep_matrix(
    *, algorithms: Optional[Sequence[str]] = None, scheduler: str = "auto"
) -> List[SweepScenario]:
    """The full comparison matrix: 9 algorithms x 3 topologies x 2 sizes x 4 tiers."""
    names = tuple(algorithms) if algorithms is not None else SWEEP_ALGORITHMS
    return [
        SweepScenario(algorithm, kind, n, tier, scheduler=scheduler)
        for algorithm in names
        for kind in _TOPOLOGY_KINDS
        for n in _SIZES
        for tier in _WORKLOAD_TIERS
    ]


def smoke_sweep_matrix(
    *, algorithms: Optional[Sequence[str]] = None, scheduler: str = "auto"
) -> List[SweepScenario]:
    """The CI gate: every algorithm, star topology, n=9, heavy + bursty."""
    names = tuple(algorithms) if algorithms is not None else SWEEP_ALGORITHMS
    return [
        SweepScenario(algorithm, "star", 9, tier, scheduler=scheduler)
        for algorithm in names
        for tier in ("heavy", "bursty")
    ]


def large_sweep_matrix(
    *, algorithms: Optional[Sequence[str]] = None, scheduler: str = "auto"
) -> List[SweepScenario]:
    """The default matrix plus the 10k-node tier.

    Only the algorithms whose per-entry message cost does not grow linearly
    with N (centralized, Raymond, DAG) join the 10k tier; the broadcast
    algorithms would send ~10^4 messages per entry there, which measures
    nothing the 50-node cells do not already show.  The 10k cells run on the
    unobserved fast path (``collect_metrics=False``).
    """
    matrix = default_sweep_matrix(algorithms=algorithms, scheduler=scheduler)
    allowed = set(algorithms) if algorithms is not None else None
    for algorithm in LARGE_TIER_ALGORITHMS:
        if allowed is not None and algorithm not in allowed:
            continue
        for kind in ("star", "tree"):
            matrix.append(
                SweepScenario(
                    algorithm,
                    kind,
                    10000,
                    "heavy",
                    collect_metrics=False,
                    scheduler=scheduler,
                )
            )
    return matrix


def xlarge_sweep_matrix(
    *, algorithms: Optional[Sequence[str]] = None, scheduler: str = "auto"
) -> List[SweepScenario]:
    """The large matrix plus the 100k-node tier (scalable algorithms only).

    The tier the ROADMAP flagged as blocked on wall budget: one heavy
    100k-node cell is ~1M critical-section entries, minutes on the seed
    engine.  Star and tree only (a 100k-hop line diameter measures topology
    pathology, not the algorithms), heavy demand only, unobserved fast path.
    Additive like the 10k tier, so committed documents stay valid.
    """
    matrix = large_sweep_matrix(algorithms=algorithms, scheduler=scheduler)
    allowed = set(algorithms) if algorithms is not None else None
    for algorithm in LARGE_TIER_ALGORITHMS:
        if allowed is not None and algorithm not in allowed:
            continue
        for kind in ("star", "tree"):
            matrix.append(
                SweepScenario(
                    algorithm,
                    kind,
                    100000,
                    "heavy",
                    collect_metrics=False,
                    scheduler=scheduler,
                )
            )
    return matrix


def xxlarge_sweep_matrix(
    *, algorithms: Optional[Sequence[str]] = None, scheduler: str = "auto"
) -> List[SweepScenario]:
    """The xlarge matrix plus the 1M-node tier (O(1)-state algorithms only).

    The tier the streaming pipeline unlocked: topologies come from the
    array-backed builders, the heavy workload streams in driver-chunked
    batches, and each cell runs on the unobserved fast path in its own child
    process (whose ``ru_maxrss`` is the tier's per-scenario RSS record).
    Star and tree only, heavy demand only, and only the algorithms whose
    per-node storage is O(1) (:data:`XXLARGE_TIER_ALGORITHMS`).  Additive,
    so committed documents stay valid.
    """
    matrix = xlarge_sweep_matrix(algorithms=algorithms, scheduler=scheduler)
    allowed = set(algorithms) if algorithms is not None else None
    for algorithm in XXLARGE_TIER_ALGORITHMS:
        if allowed is not None and algorithm not in allowed:
            continue
        for kind in ("star", "tree"):
            matrix.append(
                SweepScenario(
                    algorithm,
                    kind,
                    1_000_000,
                    "heavy",
                    collect_metrics=False,
                    scheduler=scheduler,
                )
            )
    return matrix
