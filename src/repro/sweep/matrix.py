"""The sweep scenario matrix: algorithm x topology x size x workload tier.

The paper's headline result is a *comparison*: the DAG algorithm against the
classical mutual-exclusion baselines under identical workloads.  This module
defines that comparison as data — one :class:`SweepScenario` per cell of the
matrix — so the sharded runner can execute cells in any order, in any process,
and still produce the same merged result.

Determinism is anchored per scenario, not per run: every scenario derives its
workload seed from its own name (:func:`scenario_seed`), so the virtual-time
outcome of a cell is independent of which worker executes it, how many workers
exist, and what ran before it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.baselines import registry
from repro.exceptions import WorkloadError
from repro.spec import (
    FAULT_PROFILES,
    STREAMING_NODE_THRESHOLD,
    WORKLOAD_TIERS,
    XXLARGE_HEAVY_ROUNDS,
    ExperimentSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.topology.base import Topology
from repro.workload.requests import Workload

#: All nine algorithms of the paper's comparison (eight baselines + the DAG),
#: straight from the registry (registration order is the comparison order).
SWEEP_ALGORITHMS = tuple(registry.names())

#: Node counts of the large (10k/100k) and xxlarge (1M) tiers; eligibility
#: is a registry capability query, not a hand-maintained name tuple — an
#: algorithm joins a tier iff its declared ``max_recommended_nodes`` admits
#: the tier's size (message blow-up prices the broadcast schemes out at 10k;
#: Raymond's per-node queues — the paper's Section 6.4 storage cost — price
#: it out at 1M).
LARGE_TIER_NODES = 10_000
XLARGE_TIER_NODES = 100_000
XXLARGE_TIER_NODES = 1_000_000

#: Back-compat aliases for the tuples this module used to hand-maintain;
#: now derived from the capability metadata on the system classes.
LARGE_TIER_ALGORITHMS = tuple(registry.names_for_scale(LARGE_TIER_NODES))
XXLARGE_TIER_ALGORITHMS = tuple(registry.names_for_scale(XXLARGE_TIER_NODES))

_TOPOLOGY_KINDS = ("line", "star", "tree")
_SIZES = (10, 50)
_WORKLOAD_TIERS = ("light", "heavy", "bursty", "hotspot")


def validate_algorithms(names: Optional[Sequence[str]]) -> None:
    """Reject unknown algorithm names with the registry's listing.

    Called by every matrix builder (and the CLI before it forks workers), so
    a typo in ``--algorithms`` fails immediately with the known names
    instead of surfacing as a bare ``KeyError`` inside a child process.
    """
    if names is None:
        return
    known = registry.names()
    unknown = [name for name in names if name not in known]
    if unknown:
        raise WorkloadError(
            f"unknown algorithm{'s' if len(unknown) != 1 else ''} "
            f"{unknown}; known: {known}"
        )


def scenario_seed(name: str) -> int:
    """Deterministic per-scenario workload seed derived from the name alone.

    Keeping the seed a pure function of the scenario name makes every cell's
    virtual-time outcome independent of worker scheduling: a scenario run
    alone, first, last, or in any child process always replays the same
    workload.
    """
    digest = hashlib.sha256(f"sweep:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class SweepScenario:
    """One cell of the sweep matrix.

    ``collect_metrics=False`` switches the cell to the network's unobserved
    fast path (no per-entry timing statistics), which the 10k-node tier uses
    to stay in the seconds range.  ``scheduler`` picks the engine's
    pending-event store ("auto"/"heap"/"ring"); it affects wall clock only —
    the virtual-time outcome is byte-identical for every value, which the CI
    smoke job cross-checks by diffing heap and ring deterministic documents.
    It deliberately does not contribute to :attr:`name` (and therefore the
    seed), so forced-scheduler runs replay the exact same workloads.

    ``node_backend`` picks object nodes vs the columnar array core for the
    algorithms that declare both ("auto" engages the columns at
    :data:`~repro.core.compact_state.COMPACT_NODE_BACKEND_THRESHOLD` nodes).
    Like ``scheduler`` it affects wall clock only — replays are
    byte-identical across backends (the CI ``backend-identity`` matrix diffs
    forced-backend deterministic documents) — and it deliberately does not
    contribute to :attr:`name` or the seed.

    ``faults`` names a :data:`~repro.spec.FAULT_PROFILES` entry; a fault cell
    is its own scenario (the profile suffixes :attr:`name`, so the cell gets
    its own name-derived seed and its own row) — fault tiers are additive and
    never perturb committed fault-free documents.
    """

    algorithm: str
    kind: str
    n: int
    workload: str
    collect_metrics: bool = True
    scheduler: str = "auto"
    faults: Optional[str] = None
    node_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.faults is not None and self.faults not in FAULT_PROFILES:
            raise WorkloadError(
                f"unknown fault profile {self.faults!r}; "
                f"known: {sorted(FAULT_PROFILES)}"
            )

    @property
    def name(self) -> str:
        base = f"{self.algorithm}-{self.kind}-n{self.n}-{self.workload}"
        if self.faults is not None:
            return f"{base}+{self.faults}"
        return base

    @property
    def seed(self) -> int:
        return scenario_seed(self.name)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form, picklable across process start methods."""
        return asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SweepScenario":
        return SweepScenario(**data)

    def experiment_spec(self) -> ExperimentSpec:
        """The cell as a canonical :class:`~repro.spec.ExperimentSpec`.

        The spec carries the name-derived seed explicitly, so a serialized
        cell replays identically on any machine — this is the cross-machine
        shard format (``repro sweep --export-specs`` / ``--from-specs``).
        """
        return ExperimentSpec(
            algorithm=self.algorithm,
            topology=TopologySpec(kind=self.kind, n=self.n),
            workload=sweep_workload_spec(self.workload, self.n),
            scheduler=self.scheduler,
            seed=self.seed,
            collect_metrics=self.collect_metrics,
            faults=FAULT_PROFILES[self.faults] if self.faults is not None else None,
            node_backend=self.node_backend,
        )

    @staticmethod
    def from_experiment_spec(spec: ExperimentSpec) -> "SweepScenario":
        """Reconstruct the sweep cell a (shipped) experiment spec describes.

        Guards the sweep's determinism anchor: the spec's explicit seed must
        equal the seed the scenario name derives, otherwise a hand-edited
        shard file would silently replay a different workload under the same
        row name.
        """
        faults = None
        if spec.faults is not None:
            # Reverse-map to the frozen profile table: sweep fault cells run
            # named profiles only, so an ad-hoc FaultSpec in a shard file is
            # rejected rather than run under a name that does not carry it.
            for profile_name, profile in FAULT_PROFILES.items():
                if spec.faults == profile:
                    faults = profile_name
                    break
            if faults is None:
                raise WorkloadError(
                    "spec carries a FaultSpec that matches no named fault "
                    f"profile; known profiles: {sorted(FAULT_PROFILES)}"
                )
        scenario = SweepScenario(
            algorithm=spec.algorithm,
            kind=spec.topology.kind,
            n=spec.topology.n,
            workload=spec.workload.tier,
            collect_metrics=spec.collect_metrics,
            scheduler=spec.scheduler,
            faults=faults,
            node_backend=spec.node_backend,
        )
        if spec.seed != scenario.seed:
            raise WorkloadError(
                f"spec for {scenario.name!r} carries seed {spec.seed}, but the "
                f"sweep derives {scenario.seed} from the scenario name; "
                "refusing to replay a mislabelled workload"
            )
        # Full-spec comparison, not a field-by-field allowlist: any deviation
        # from the frozen cell definition (tier parameters, latency model,
        # topology seed/compact, record_trace) would run a configuration the
        # row name does not describe.
        if spec != scenario.experiment_spec():
            raise WorkloadError(
                f"spec for {scenario.name!r} does not match the sweep's frozen "
                "cell definition (tier parameters, latency, topology "
                "seed/compact and record_trace must be the matrix defaults)"
            )
        return scenario


def sweep_workload_spec(tier: str, n: int) -> WorkloadSpec:
    """The sweep's frozen tier parameterisation as a spec.

    Tier definitions are part of the sweep contract: changing them changes
    every committed sweep result, so extend with new tiers instead of
    editing existing ones.  Heavy demand is five materialised rounds below
    the streaming threshold and the bench-matching
    :data:`~repro.spec.XXLARGE_HEAVY_ROUNDS` streamed rounds above it.
    """
    if tier not in WORKLOAD_TIERS:
        raise WorkloadError(
            f"unknown sweep workload tier {tier!r}; known: {list(WORKLOAD_TIERS)}"
        )
    if tier == "heavy":
        if n >= STREAMING_NODE_THRESHOLD:
            return WorkloadSpec(
                tier="heavy", rounds=XXLARGE_HEAVY_ROUNDS, streaming=True
            )
        return WorkloadSpec(tier="heavy", rounds=5)
    return WorkloadSpec(tier=tier)


def build_sweep_workload(
    topology: Topology, tier: str, *, seed: int
) -> Workload:
    """Construct the workload for one tier on one topology (spec-delegated)."""
    return sweep_workload_spec(tier, len(topology.nodes)).build(topology, seed=seed)


def build_sweep_topology(kind: str, n: int) -> Topology:
    """The sweep shares the benchmark's (= the spec's) frozen topology families."""
    return TopologySpec(kind=kind, n=n).build()


#: Schema tag of a sweep spec-shard file: the cross-machine shard format
#: (a JSON list of canonical experiment specs).
SPEC_SHARD_SCHEMA = "sweep-specs/v1"


def write_spec_shard(matrix: Sequence[SweepScenario], path: str) -> None:
    """Write ``matrix`` as a spec-shard JSON file.

    The file is a list of canonical :class:`~repro.spec.ExperimentSpec`
    dictionaries — everything another machine needs to run this slice of the
    matrix and produce rows that merge byte-identically into the full sweep
    document (``repro sweep --from-specs`` + ``--merge``).
    """
    document = {
        "schema": SPEC_SHARD_SCHEMA,
        "scenarios": [scenario.experiment_spec().to_dict() for scenario in matrix],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_spec_shard(path: str) -> List[SweepScenario]:
    """Load a spec-shard file back into sweep scenarios (validated)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("schema") != SPEC_SHARD_SCHEMA:
        raise WorkloadError(
            f"{path}: not a sweep spec-shard file "
            f"(expected schema {SPEC_SHARD_SCHEMA!r})"
        )
    return [
        SweepScenario.from_experiment_spec(ExperimentSpec.from_dict(entry))
        for entry in document.get("scenarios", [])
    ]


#: Fault profiles every algorithm faces in the fault tier.  ``crash-recover``
#: is excluded here: token regeneration is defined only for the DAG protocol,
#: so it gets a single dedicated cell appended by :func:`fault_sweep_matrix`.
FAULT_TIER_PROFILES = (
    "drop1",
    "drop5",
    "lose-privilege",
    "lose-request",
    "crash-holder",
    "partition-heal",
)


def fault_sweep_matrix(
    *,
    algorithms: Optional[Sequence[str]] = None,
    scheduler: str = "auto",
    node_backend: str = "auto",
) -> List[SweepScenario]:
    """The fault tier: every algorithm under the same injected fault load.

    One condition (star topology, n=50, heavy demand — the densest fault-free
    cell of the default matrix) crossed with the frozen fault profiles, so
    the merged document answers the robustness question directly: seeded
    random drops and targeted PRIVILEGE/REQUEST losses show token loss
    (DAG/Raymond/Suzuki-Kasami starve) against quorum starvation (the
    permission-based baselines stall or trip protocol errors), and the
    crash-holder profile kills whichever node holds the token/lock at t=25.
    The DAG algorithm additionally runs the ``crash-recover`` profile — the
    same kill followed by token regeneration — as the recovery contrast cell.
    """
    validate_algorithms(algorithms)
    names = tuple(algorithms) if algorithms is not None else SWEEP_ALGORITHMS
    matrix = [
        SweepScenario(
            algorithm,
            "star",
            50,
            "heavy",
            scheduler=scheduler,
            faults=profile,
            node_backend=node_backend,
        )
        for algorithm in names
        for profile in FAULT_TIER_PROFILES
    ]
    if "dag" in names:
        matrix.append(
            SweepScenario(
                "dag",
                "star",
                50,
                "heavy",
                scheduler=scheduler,
                faults="crash-recover",
                node_backend=node_backend,
            )
        )
    return matrix


def default_sweep_matrix(
    *,
    algorithms: Optional[Sequence[str]] = None,
    scheduler: str = "auto",
    node_backend: str = "auto",
) -> List[SweepScenario]:
    """The full comparison matrix: 9 algorithms x 3 topologies x 2 sizes x 4 tiers."""
    validate_algorithms(algorithms)
    names = tuple(algorithms) if algorithms is not None else SWEEP_ALGORITHMS
    return [
        SweepScenario(algorithm, kind, n, tier, scheduler=scheduler, node_backend=node_backend)
        for algorithm in names
        for kind in _TOPOLOGY_KINDS
        for n in _SIZES
        for tier in _WORKLOAD_TIERS
    ]


def smoke_sweep_matrix(
    *,
    algorithms: Optional[Sequence[str]] = None,
    scheduler: str = "auto",
    node_backend: str = "auto",
) -> List[SweepScenario]:
    """The CI gate: every algorithm, star topology, n=9, heavy + bursty."""
    validate_algorithms(algorithms)
    names = tuple(algorithms) if algorithms is not None else SWEEP_ALGORITHMS
    return [
        SweepScenario(
            algorithm, "star", 9, tier, scheduler=scheduler, node_backend=node_backend
        )
        for algorithm in names
        for tier in ("heavy", "bursty")
    ]


def large_sweep_matrix(
    *,
    algorithms: Optional[Sequence[str]] = None,
    scheduler: str = "auto",
    node_backend: str = "auto",
) -> List[SweepScenario]:
    """The default matrix plus the 10k-node tier.

    Tier membership is the registry capability query: only the algorithms
    whose declared ``max_recommended_nodes`` admits 10k nodes join (the
    broadcast algorithms would send ~10^4 messages per entry there, which
    measures nothing the 50-node cells do not already show).  The 10k cells
    run on the unobserved fast path (``collect_metrics=False``).
    """
    matrix = default_sweep_matrix(
        algorithms=algorithms, scheduler=scheduler, node_backend=node_backend
    )
    allowed = set(algorithms) if algorithms is not None else None
    for algorithm in registry.names_for_scale(LARGE_TIER_NODES):
        if allowed is not None and algorithm not in allowed:
            continue
        for kind in ("star", "tree"):
            matrix.append(
                SweepScenario(
                    algorithm,
                    kind,
                    LARGE_TIER_NODES,
                    "heavy",
                    collect_metrics=False,
                    scheduler=scheduler,
                    node_backend=node_backend,
                )
            )
    return matrix


def xlarge_sweep_matrix(
    *,
    algorithms: Optional[Sequence[str]] = None,
    scheduler: str = "auto",
    node_backend: str = "auto",
) -> List[SweepScenario]:
    """The large matrix plus the 100k-node tier (scalable algorithms only).

    The tier the ROADMAP flagged as blocked on wall budget: one heavy
    100k-node cell is ~1M critical-section entries, minutes on the seed
    engine.  Star and tree only (a 100k-hop line diameter measures topology
    pathology, not the algorithms), heavy demand only, unobserved fast path.
    Additive like the 10k tier, so committed documents stay valid.
    """
    matrix = large_sweep_matrix(
        algorithms=algorithms, scheduler=scheduler, node_backend=node_backend
    )
    allowed = set(algorithms) if algorithms is not None else None
    for algorithm in registry.names_for_scale(XLARGE_TIER_NODES):
        if allowed is not None and algorithm not in allowed:
            continue
        for kind in ("star", "tree"):
            matrix.append(
                SweepScenario(
                    algorithm,
                    kind,
                    XLARGE_TIER_NODES,
                    "heavy",
                    collect_metrics=False,
                    scheduler=scheduler,
                    node_backend=node_backend,
                )
            )
    return matrix


def xxlarge_sweep_matrix(
    *,
    algorithms: Optional[Sequence[str]] = None,
    scheduler: str = "auto",
    node_backend: str = "auto",
) -> List[SweepScenario]:
    """The xlarge matrix plus the 1M-node tier (O(1)-state algorithms only).

    The tier the streaming pipeline unlocked: topologies come from the
    array-backed builders, the heavy workload streams in driver-chunked
    batches, and each cell runs on the unobserved fast path in its own child
    process (whose ``ru_maxrss`` is the tier's per-scenario RSS record).
    Star and tree only, heavy demand only, and only the algorithms whose
    declared ``max_recommended_nodes`` admits a million nodes (per the
    registry, the ones with O(1) per-node storage).  Additive, so committed
    documents stay valid.
    """
    matrix = xlarge_sweep_matrix(
        algorithms=algorithms, scheduler=scheduler, node_backend=node_backend
    )
    allowed = set(algorithms) if algorithms is not None else None
    for algorithm in registry.names_for_scale(XXLARGE_TIER_NODES):
        if allowed is not None and algorithm not in allowed:
            continue
        for kind in ("star", "tree"):
            matrix.append(
                SweepScenario(
                    algorithm,
                    kind,
                    XXLARGE_TIER_NODES,
                    "heavy",
                    collect_metrics=False,
                    scheduler=scheduler,
                    node_backend=node_backend,
                )
            )
    return matrix
