"""Sharded sweep runner: fan scenarios out over a pool of child processes.

The runner is deliberately not a ``multiprocessing.Pool``: a pool shares
worker processes between tasks, so one crashing scenario poisons the pool (and
``concurrent.futures`` marks every pending future broken).  Here each scenario
gets its own short-lived :class:`multiprocessing.Process` with a private pipe;
the parent multiplexes completions with :func:`multiprocessing.connection.wait`
and keeps at most ``workers`` children alive.  A child that dies without
reporting — crash, OOM kill, fault injection — costs exactly one row.

Merged output is deterministic by construction: scenario outcomes depend only
on the scenario spec (seeds derive from names), rows are merged in scenario
name order, and all host-dependent measurements live under per-row ``timing``
keys (plus the top-level ``run`` key), which :func:`deterministic_document`
strips.  ``repro sweep`` with one worker and with N workers therefore produces
byte-identical deterministic documents.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import warnings
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sweep.matrix import SweepScenario
from repro.sweep.worker import CRASH_ENV, child_main, error_row

SCHEMA = "sweep/v1"


class _RunningScenario:
    """Bookkeeping for one in-flight child process."""

    __slots__ = ("spec", "process", "reader", "deadline")

    def __init__(self, spec, process, reader, deadline) -> None:
        self.spec = spec
        self.process = process
        self.reader = reader
        self.deadline = deadline


def run_sweep(
    matrix: Sequence[SweepScenario],
    *,
    workers: int = 2,
    timeout: Optional[float] = None,
    start_method: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Execute ``matrix`` over ``workers`` child processes and merge results.

    Args:
        matrix: the scenarios to run (order does not affect the output).
        workers: maximum concurrent child processes (>= 1).
        timeout: optional per-scenario wall-clock budget in seconds; an
            overrunning child is terminated and recorded as ``"timeout"``.
            Note that *whether* a scenario times out depends on host speed
            and worker contention, so timeout rows are the one exception to
            the byte-identity guarantee of :func:`deterministic_document` —
            leave ``timeout`` unset when comparing documents across runs.
        start_method: ``multiprocessing`` start method (default: platform
            default — ``fork`` on Linux; results are identical under all).
        progress: optional callback receiving one line per finished scenario.

    Returns:
        The merged sweep document (see :data:`SCHEMA`).  Host-dependent
        fields are confined to ``document["run"]`` and each row's
        ``"timing"`` key so :func:`deterministic_document` can strip them.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if os.environ.get(CRASH_ENV):
        warnings.warn(
            f"{CRASH_ENV} is deprecated; give the scenario the "
            "'worker-crash' fault profile (SweepScenario(faults="
            "'worker-crash')) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    specs = list(matrix)
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError("sweep matrix contains duplicate scenario names")
    context = (
        multiprocessing.get_context(start_method)
        if start_method is not None
        else multiprocessing.get_context()
    )

    queue = list(reversed(specs))  # pop() takes scenarios in matrix order
    running: Dict[Any, _RunningScenario] = {}  # keyed by process sentinel
    rows: Dict[str, Dict[str, Any]] = {}
    started = time.perf_counter()

    def launch(spec: SweepScenario) -> None:
        reader, writer = context.Pipe(duplex=False)
        process = context.Process(
            target=child_main, args=(spec.as_dict(), writer), daemon=True
        )
        process.start()
        writer.close()  # the child holds the only write end now
        deadline = time.monotonic() + timeout if timeout is not None else None
        running[process.sentinel] = _RunningScenario(spec, process, reader, deadline)

    def finish(entry: _RunningScenario) -> None:
        entry.process.join()
        # A dead child with nothing in the pipe still reports poll()=True (the
        # closed write end is EOF-readable), so a crash surfaces as EOFError.
        try:
            row = entry.reader.recv() if entry.reader.poll() else None
        except EOFError:
            row = None
        if row is None:
            row = error_row(
                entry.spec, "crashed", exitcode=entry.process.exitcode
            )
        entry.reader.close()
        rows[row["scenario"]] = row
        if progress is not None:
            timing = row.get("timing") or {}
            rate = timing.get("events_per_sec")
            detail = f"{rate:>12,.0f} ev/s" if rate else row["status"].upper()
            progress(f"{row['scenario']:<44} {detail}")

    while queue or running:
        while queue and len(running) < workers:
            launch(queue.pop())
        wait_for = None
        now = time.monotonic()
        deadlines = [e.deadline for e in running.values() if e.deadline is not None]
        if deadlines:
            wait_for = max(0.0, min(deadlines) - now)
        ready = mp_connection.wait(list(running), timeout=wait_for)
        for sentinel in ready:
            finish(running.pop(sentinel))
        if timeout is not None:
            now = time.monotonic()
            for sentinel, entry in list(running.items()):
                if entry.deadline is not None and now >= entry.deadline:
                    # A child that already reported beat the deadline even if
                    # its sentinel wasn't in this round's ready set — take
                    # its row rather than discarding a finished scenario.
                    if entry.reader.poll():
                        finish(running.pop(sentinel))
                        continue
                    entry.process.terminate()
                    entry.process.join()
                    entry.reader.close()
                    rows[entry.spec.name] = error_row(
                        entry.spec, "timeout", timeout_seconds=timeout
                    )
                    del running[sentinel]
                    if progress is not None:
                        progress(f"{entry.spec.name:<44} TIMEOUT")

    ordered = [rows[name] for name in sorted(rows)]
    failures = [row["scenario"] for row in ordered if row["status"] != "ok"]
    return {
        "schema": SCHEMA,
        "generated_by": "repro sweep",
        "matrix_size": len(specs),
        "scenarios": ordered,
        "failures": failures,
        "run": {
            "workers": workers,
            "start_method": context.get_start_method(),
            "wall_seconds": round(time.perf_counter() - started, 3),
        },
    }


def deterministic_document(document: Dict[str, Any]) -> Dict[str, Any]:
    """The sweep document minus every host- or run-path-dependent field.

    Two sweeps of the same matrix — regardless of worker count, start
    method, machine speed, or whether the rows came from one run or from
    ``merge_documents`` over shards — must agree byte-for-byte on
    ``canonical_json(deterministic_document(doc))``.  ``generated_by`` is
    provenance (it differs between single-shot and merged-shard documents),
    so it is stripped along with the timing.
    """
    stripped = {
        key: value
        for key, value in document.items()
        if key not in ("run", "generated_by")
    }
    stripped["scenarios"] = [
        {key: value for key, value in row.items() if key != "timing"}
        for row in document["scenarios"]
    ]
    return stripped


def canonical_json(document: Dict[str, Any]) -> str:
    """Canonical serialisation used for byte-identity comparisons."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_document(document: Dict[str, Any], path: str) -> None:
    """Write a sweep document to ``path`` in canonical form."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(document))


def merge_documents(documents: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge the scenario rows of several sweep documents into one.

    Used to combine shards produced on different machines (each shard runs a
    disjoint slice of the matrix).  Scenario names must not collide.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    for document in documents:
        for row in document.get("scenarios", []):
            if row["scenario"] in rows:
                raise ValueError(
                    f"scenario {row['scenario']!r} appears in more than one shard"
                )
            rows[row["scenario"]] = row
    ordered = [rows[name] for name in sorted(rows)]
    return {
        "schema": SCHEMA,
        "generated_by": "repro sweep (merged shards)",
        "matrix_size": len(ordered),
        "scenarios": ordered,
        "failures": [row["scenario"] for row in ordered if row["status"] != "ok"],
        "run": {"workers": None, "start_method": None, "wall_seconds": None},
    }
