"""Exception hierarchy for the ``repro`` library.

Every exception raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError``, ``ValueError`` raised by argument
validation in constructors) propagate normally where that is more idiomatic.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation reaches an invalid state."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or after shutdown."""


class NetworkError(SimulationError):
    """Raised for invalid network operations (unknown node, self-send, ...)."""


class TopologyError(ReproError):
    """Raised when a logical topology violates the paper's assumptions.

    The DAG algorithm requires the undirected logical graph to be a tree
    (connected and acyclic) and the orientation to have exactly one sink with
    out-degree zero while every other node has out-degree one.
    """


class ProtocolError(ReproError):
    """Raised when a protocol handler receives a message it cannot process."""


class InvariantViolation(ReproError):
    """Raised by invariant checkers when a safety property is violated.

    These indicate a bug in an algorithm implementation (or a deliberately
    injected fault in a test), never a recoverable runtime condition.
    """


class WorkloadError(ReproError):
    """Raised for malformed workload specifications."""


class ExperimentError(ReproError):
    """Raised when an experiment cannot be completed (e.g. requests remain
    unsatisfied after the simulation ran out of events, which indicates a
    deadlock in the algorithm under test)."""


class RuntimeTransportError(ReproError):
    """Raised by the asyncio runtime transport layer."""


class LockError(ReproError):
    """Raised for invalid uses of :class:`repro.runtime.lock.DistributedLock`."""


class ShardUnavailableError(LockError):
    """Raised when a lock-service shard cannot be reached (connection refused,
    reset mid-call, or per-op deadline exceeded).  Retryable: the client's
    retry loop re-resolves ownership against the latest cluster view and
    tries again; it escapes only once the retry budget is exhausted."""


class LockFencedError(LockError):
    """Raised when a release carries a grant epoch older than the key's
    current epoch: the holder's shard died, the key was taken over, and the
    stale hold was fenced off.  The lock is *not* held any more — the caller
    must re-acquire before touching the protected resource again."""
