"""Unified observability: metrics registry, snapshots, Chrome-trace export.

The simulator's evaluation layer (``sim/metrics.py``, ``sim/trace.py``)
measures the protocol in virtual time; the networked runtime needs the same
visibility in wall time.  This package is the shared instrumentation layer:

* :mod:`repro.obs.registry` — counters, gauges and fixed-bucket histograms
  behind a :class:`MetricsRegistry` that costs (nearly) nothing while
  disabled: a disabled registry hands out shared null instruments whose
  operations are single attribute-free no-ops, so hot paths can keep their
  instrument references unconditionally.
* :mod:`repro.obs.snapshot` — point-in-time metric documents plus the
  fairness summaries (per-session latency spread, queue depth) the ROADMAP
  lists as the runtime's missing client-visible metrics.  Documents are
  serialized through the sweep harness's ``canonical_json`` so merged or
  compared artifacts are byte-stable.
* :mod:`repro.obs.chrome_trace` — renders simulator
  :class:`~repro.sim.trace.TraceEvent` streams and runtime op lifecycles
  (request→grant→release, failover windows, fenced/retried ops) to Chrome
  ``trace_event`` JSON viewable in ``chrome://tracing`` / Perfetto.
"""

from repro.obs.chrome_trace import (
    chrome_trace_document,
    runtime_span_events,
    sim_trace_events,
    write_chrome_trace,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.snapshot import (
    OBS_SNAPSHOT_SCHEMA,
    fairness_summary,
    merge_registry_snapshots,
    quantile,
    snapshot_document,
    write_snapshot,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "OBS_SNAPSHOT_SCHEMA",
    "chrome_trace_document",
    "fairness_summary",
    "merge_registry_snapshots",
    "quantile",
    "runtime_span_events",
    "sim_trace_events",
    "snapshot_document",
    "write_chrome_trace",
    "write_snapshot",
]
