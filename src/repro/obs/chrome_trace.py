"""Render traces to Chrome ``trace_event`` JSON (chrome://tracing, Perfetto).

Two producers share one consumer format:

* **Simulator** :class:`~repro.sim.trace.TraceEvent` streams.  Virtual time
  maps to microseconds at a fixed scale (1 time unit = 1 ms of trace time,
  so a heavy run's request/enter/exit rhythm is legible at default zoom).
  ``cs_request``→``cs_enter`` renders as a *waiting* span and
  ``cs_enter``→``cs_exit`` as a *critical_section* span per node; every
  other category becomes a thread-scoped instant event.  The mapping is a
  pure function of the event stream, so a deterministic replay exports a
  byte-identical document (CI-tested).
* **Runtime op lifecycles** — span dicts recorded by the lock client and
  the lockbench driver (request→grant→release, failover windows,
  fenced/retried ops), already in seconds relative to a run origin.

The document is written through the sweep harness's ``canonical_json``
helper, so exported artifacts are byte-stable under merging and comparison
(trace viewers ignore key order).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

#: Virtual-time scale: one simulated time unit becomes this many trace
#: microseconds (i.e. 1 unit == 1 ms in the viewer).
SIM_TIME_SCALE_US = 1000.0

#: Wall-clock scale for runtime spans recorded in seconds.
WALL_TIME_SCALE_US = 1_000_000.0


def _ts(value: float, scale: float) -> int:
    return int(round(value * scale))


def sim_trace_events(
    events: Iterable[Any],
    *,
    pid: int = 0,
    scale: float = SIM_TIME_SCALE_US,
) -> List[Dict[str, Any]]:
    """Chrome events for a simulator :class:`TraceEvent` stream.

    Per node (rendered as a thread), ``cs_request``/``cs_enter``/``cs_exit``
    fold into complete ("X") spans; other categories become instant ("i")
    events carrying their detail dict as ``args``.  Unpaired opens (a run
    truncated mid-entry) are dropped rather than invented.
    """
    out: List[Dict[str, Any]] = []
    waiting_since: Dict[Any, float] = {}
    inside_since: Dict[Any, float] = {}
    for event in events:
        node = event.node
        if event.category == "cs_request":
            waiting_since.setdefault(node, event.time)
            continue
        if event.category == "cs_enter":
            requested = waiting_since.pop(node, None)
            if requested is not None:
                out.append(
                    {
                        "name": "waiting",
                        "cat": "mutex",
                        "ph": "X",
                        "ts": _ts(requested, scale),
                        "dur": _ts(event.time - requested, scale),
                        "pid": pid,
                        "tid": node,
                    }
                )
            inside_since[node] = event.time
            continue
        if event.category == "cs_exit":
            entered = inside_since.pop(node, None)
            if entered is not None:
                out.append(
                    {
                        "name": "critical_section",
                        "cat": "mutex",
                        "ph": "X",
                        "ts": _ts(entered, scale),
                        "dur": _ts(event.time - entered, scale),
                        "pid": pid,
                        "tid": node,
                    }
                )
            continue
        out.append(
            {
                "name": event.category,
                "cat": event.category,
                "ph": "i",
                "s": "t",
                "ts": _ts(event.time, scale),
                "pid": pid,
                "tid": node,
                "args": {key: event.detail[key] for key in sorted(event.detail)},
            }
        )
    # Chrome sorts for display, but a canonical document must not depend on
    # close-out order: sort by (ts, tid, name) for byte stability.
    out.sort(key=lambda item: (item["ts"], item["tid"], item["name"]))
    return out


def runtime_span_events(
    spans: Iterable[Mapping[str, Any]],
    *,
    pid: int = 1,
    scale: float = WALL_TIME_SCALE_US,
) -> List[Dict[str, Any]]:
    """Chrome events for runtime op-lifecycle spans.

    Each span is a mapping with ``name``, ``start`` and ``end`` (seconds,
    relative to the run origin), an optional ``tid`` (defaults to 0 — use
    the session id), optional ``cat`` and optional ``args``.  A span whose
    ``end`` is missing (an op cut off mid-flight) renders as an instant.
    """
    out: List[Dict[str, Any]] = []
    for span in spans:
        start = float(span["start"])
        end = span.get("end")
        tid = int(span.get("tid", 0))
        base = {
            "name": str(span["name"]),
            "cat": str(span.get("cat", "op")),
            "pid": pid,
            "tid": tid,
        }
        args = span.get("args")
        if args:
            base["args"] = {key: args[key] for key in sorted(args)}
        if end is None:
            base.update({"ph": "i", "s": "t", "ts": _ts(start, scale)})
        else:
            base.update(
                {
                    "ph": "X",
                    "ts": _ts(start, scale),
                    "dur": max(1, _ts(float(end) - start, scale)),
                }
            )
        out.append(base)
    out.sort(key=lambda item: (item["ts"], item["pid"], item["tid"], item["name"]))
    return out


def chrome_trace_document(
    events: Sequence[Dict[str, Any]],
    *,
    metadata: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The full ``trace_event`` JSON object (array-of-events form + metadata)."""
    document: Dict[str, Any] = {
        "displayTimeUnit": "ms",
        "traceEvents": list(events),
    }
    if metadata:
        document["otherData"] = {key: metadata[key] for key in sorted(metadata)}
    return document


def write_chrome_trace(document: Dict[str, Any], path: str) -> None:
    """Write a trace document in canonical form (byte-stable artifacts)."""
    from repro.sweep import canonical_json

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(document))


__all__ = [
    "SIM_TIME_SCALE_US",
    "WALL_TIME_SCALE_US",
    "chrome_trace_document",
    "runtime_span_events",
    "sim_trace_events",
    "write_chrome_trace",
]
