"""The metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

1. **Near-zero cost while disabled.**  Instrumented code asks the registry
   for its instruments once (construction time) and calls ``inc``/``set``/
   ``observe`` unconditionally on the hot path.  A disabled registry hands
   out the shared *null* instruments, whose methods are empty — one Python
   call, no branches, no allocation.  Code that would pay extra to *prepare*
   an observation (a clock read, a queue walk) additionally guards on
   ``registry.enabled``.
2. **Determinism where it matters.**  Sampling is stride-based (every Nth
   observation), not random: two replays of a deterministic workload observe
   the same sample set, so snapshot documents can be compared byte-for-byte.
3. **Plain data out.**  :meth:`MetricsRegistry.snapshot` returns a sorted,
   JSON-ready dict; canonical serialization lives in
   :mod:`repro.obs.snapshot`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError

#: Default histogram bounds for acquire-latency observations, in
#: milliseconds.  Roughly logarithmic from sub-millisecond (uncontended
#: unix-socket round trip) to tens of seconds (deadline territory).
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
)


class Counter:
    """A monotone event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value: set directly, or read through a callback.

    Callback gauges (:meth:`set_function`) are how the engine and the shard
    register without paying anything on their hot paths — the value is
    computed only when a snapshot is taken.
    """

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Any = 0
        self._fn: Optional[Callable[[], Any]] = None

    def set(self, value: Any) -> None:
        self._value = value
        self._fn = None

    def set_function(self, fn: Callable[[], Any]) -> None:
        """Read the gauge through ``fn`` at snapshot time (lazy gauge)."""
        self._fn = fn

    def update_max(self, value: Any) -> None:
        """Keep the running maximum (a high-watermark gauge)."""
        if self._fn is None and value > self._value:
            self._value = value

    @property
    def value(self) -> Any:
        return self._fn() if self._fn is not None else self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A fixed-bucket histogram with stride sampling.

    ``bounds`` are ascending upper edges; an observation lands in the first
    bucket whose bound it does not exceed, or in the overflow bucket.  With
    ``sample_every=N`` only every Nth observation is recorded (the first is
    always recorded, so short runs still produce data); ``observed`` counts
    every call either way, so the sampled fraction is visible in snapshots.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "observed", "recorded",
                 "total", "max", "_stride", "_tick")

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        *,
        sample_every: int = 1,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ExperimentError(
                f"histogram {name!r} needs ascending, non-empty bucket bounds"
            )
        if sample_every < 1:
            raise ExperimentError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * len(self.bounds)
        self.overflow = 0
        self.observed = 0
        self.recorded = 0
        self.total = 0.0
        self.max = 0.0
        self._stride = sample_every
        self._tick = 0

    def observe(self, value: float) -> None:
        self.observed += 1
        tick = self._tick
        self._tick = tick + 1
        if tick % self._stride:
            return
        self.recorded += 1
        self.total += value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "buckets": [
                [bound, count] for bound, count in zip(self.bounds, self.counts)
            ],
            "overflow": self.overflow,
            "observed": self.observed,
            "recorded": self.recorded,
            "sum": round(self.total, 6),
            "max": round(self.max, 6),
            "mean": round(self.total / self.recorded, 6) if self.recorded else 0.0,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: Any) -> None:
        pass

    def set_function(self, fn: Callable[[], Any]) -> None:
        pass

    def update_max(self, value: Any) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: The shared disabled instruments: every disabled registry hands these out,
#: so an instrumented hot path holds exactly one no-op call while obs is off.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """A named collection of instruments with an on/off switch.

    ``enabled=False`` (the default posture for production hot paths) makes
    every factory return the shared null instrument — callers keep their
    code shape, pay one empty call, and :meth:`snapshot` reports only the
    disabled marker.  ``sample_every`` is the sampling knob, applied to
    histograms (counters and gauges are O(1) and stay exact).
    """

    def __init__(self, *, enabled: bool = True, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ExperimentError(f"sample_every must be >= 1, got {sample_every}")
        self.enabled = enabled
        self.sample_every = sample_every
        self._instruments: Dict[str, Any] = {}

    def _register(self, name: str, factory: Callable[[], Any]) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._register(name, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self._register(name, lambda: Gauge(name))

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._register(
            name,
            lambda: Histogram(name, bounds, sample_every=self.sample_every),
        )

    def snapshot(self) -> Dict[str, Any]:
        """All instruments, sorted by name, as plain JSON-ready data."""
        return {
            "enabled": self.enabled,
            "sample_every": self.sample_every,
            "metrics": {
                name: instrument.snapshot()
                for name, instrument in sorted(self._instruments.items())
            },
        }


#: A process-wide disabled registry for callers that were handed no registry
#: at all: ``(spec.obs or NULL_REGISTRY)``-style defaults.
NULL_REGISTRY = MetricsRegistry(enabled=False)


__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
]
