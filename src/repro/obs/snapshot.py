"""Point-in-time observability documents and fairness summaries.

The fairness metrics are the client-visible numbers the ROADMAP lists as the
runtime's missing observability: *per-session latency spread* (how unequally
the service treats its sessions — p50/p99/max over each session's mean
acquire latency) and *queue depth* (how many requesters are stacked behind a
key's token, deduced by the implicit-queue inspector exactly as the paper
deduces it from node states).

Documents are serialized through the sweep harness's ``canonical_json``
helper — dict-order nondeterminism must never leak into committed or
compared artifacts.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

OBS_SNAPSHOT_SCHEMA = "obs-snapshot/v1"


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


def fairness_summary(
    session_latencies: Mapping[Any, Sequence[float]],
    *,
    max_queue_depth: Optional[int] = None,
) -> Dict[str, Any]:
    """The per-session fairness block for a lockbench row (milliseconds).

    ``session_latencies`` maps a session id to that session's acquire
    latencies in **seconds**; the summary is the spread of per-session mean
    latency.  A fair service keeps p99 close to p50; a starving one shows a
    long tail even when the aggregate percentiles look healthy.
    """
    means = sorted(
        sum(values) / len(values)
        for values in session_latencies.values()
        if len(values) > 0
    )
    block: Dict[str, Any] = {
        "sessions": len(means),
        "session_p50_ms": round(quantile(means, 0.50) * 1000, 3),
        "session_p99_ms": round(quantile(means, 0.99) * 1000, 3),
        "session_max_ms": round(means[-1] * 1000, 3) if means else 0.0,
    }
    if max_queue_depth is not None:
        block["max_queue_depth"] = int(max_queue_depth)
    return block


def merge_registry_snapshots(
    snapshots: Mapping[str, Mapping[str, Any]],
) -> Dict[str, Any]:
    """Combine several registry snapshots into one, prefixing metric names.

    ``snapshots`` maps a prefix (``"shard0"``, ``"client"``) to that
    registry's :meth:`~repro.obs.registry.MetricsRegistry.snapshot`.  The
    merged view is what a multi-process producer (the sharded lock service)
    publishes as a single document.
    """
    merged: Dict[str, Any] = {}
    enabled = False
    sample_every = 1
    for prefix in sorted(snapshots):
        snap = snapshots[prefix]
        enabled = enabled or bool(snap.get("enabled"))
        sample_every = max(sample_every, int(snap.get("sample_every", 1)))
        for name, data in (snap.get("metrics") or {}).items():
            merged[f"{prefix}.{name}"] = data
    return {
        "enabled": enabled,
        "sample_every": sample_every,
        "metrics": {name: merged[name] for name in sorted(merged)},
    }


def snapshot_document(
    *,
    source: str,
    registry_snapshot: Mapping[str, Any],
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one obs snapshot document (schema ``obs-snapshot/v1``).

    ``source`` names the producer (``"sim"``, ``"runtime"``, a scenario
    name); ``extra`` carries producer-specific sections (per-shard stats,
    fairness blocks).  Keys are sorted on serialization, not here — the
    canonical form is the contract.
    """
    document: Dict[str, Any] = {
        "schema": OBS_SNAPSHOT_SCHEMA,
        "source": source,
        "registry": dict(registry_snapshot),
    }
    if extra:
        for key in sorted(extra):
            document[key] = extra[key]
    return document


def write_snapshot(document: Dict[str, Any], path: str) -> None:
    """Write an obs document in canonical form (byte-stable artifacts)."""
    from repro.sweep import canonical_json

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(document))


__all__ = [
    "OBS_SNAPSHOT_SCHEMA",
    "fairness_summary",
    "merge_registry_snapshots",
    "quantile",
    "snapshot_document",
    "write_snapshot",
]
