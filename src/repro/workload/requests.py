"""Workload data types: critical-section requests and schedules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class CSRequest:
    """One critical-section request in a workload.

    Attributes:
        node: the node that issues the request.
        arrival_time: virtual time at which the request is issued.
        cs_duration: how long the node stays inside its critical section once
            it gets in.
    """

    node: int
    arrival_time: float
    cs_duration: float = 1.0

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise WorkloadError(f"arrival time must be non-negative, got {self.arrival_time}")
        if self.cs_duration < 0:
            raise WorkloadError(f"CS duration must be non-negative, got {self.cs_duration}")


@dataclass(frozen=True)
class Workload:
    """An ordered schedule of critical-section requests.

    The schedule may contain several requests by the same node; the driver
    serialises them (a node never has two outstanding requests, matching the
    paper's assumption) by delaying a request until the node's previous one
    has completed.
    """

    requests: Tuple[CSRequest, ...]
    description: str = ""

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.requests, key=lambda r: (r.arrival_time, r.node)))
        object.__setattr__(self, "requests", ordered)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[CSRequest]:
        return iter(self.requests)

    @property
    def nodes(self) -> List[int]:
        """Distinct nodes that appear in the workload, sorted."""
        return sorted({request.node for request in self.requests})

    @property
    def horizon(self) -> float:
        """Latest arrival time in the schedule (0.0 for an empty workload)."""
        if not self.requests:
            return 0.0
        return max(request.arrival_time for request in self.requests)

    def per_node_counts(self) -> Dict[int, int]:
        """Number of requests issued by each node."""
        counts: Dict[int, int] = {}
        for request in self.requests:
            counts[request.node] = counts.get(request.node, 0) + 1
        return counts

    @classmethod
    def single(cls, node: int, *, cs_duration: float = 1.0) -> "Workload":
        """A workload with one immediate request by ``node``."""
        return cls(
            requests=(CSRequest(node=node, arrival_time=0.0, cs_duration=cs_duration),),
            description=f"single request by node {node}",
        )

    @classmethod
    def simultaneous(
        cls,
        nodes: Sequence[int],
        *,
        cs_duration: float = 1.0,
        arrival_time: float = 0.0,
    ) -> "Workload":
        """All of ``nodes`` request at the same instant (heavy instantaneous load)."""
        return cls(
            requests=tuple(
                CSRequest(node=node, arrival_time=arrival_time, cs_duration=cs_duration)
                for node in nodes
            ),
            description=f"simultaneous requests by {list(nodes)}",
        )
