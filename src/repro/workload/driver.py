"""The experiment driver: replay a workload against an algorithm.

The driver owns the interaction pattern the paper assumes: a node issues at
most one request at a time, stays in its critical section for the request's
duration, and releases.  Requests that a workload schedules while the node's
previous one is still in progress are queued locally and issued as soon as the
node is free again, so the same :class:`~repro.workload.requests.Workload` can
be replayed against algorithms of very different speeds and still make sense.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Type, Union

from repro.baselines.base import MutexSystem, registry
from repro.exceptions import ExperimentError, ProtocolError, WorkloadError
from repro.sim.latency import LatencyModel
from repro.sim.schedulers import RING_ARRIVAL_THRESHOLD, make_scheduler
from repro.topology.base import Topology
from repro.workload.requests import CSRequest, Workload
from repro.workload.streaming import StreamingWorkload

if TYPE_CHECKING:
    from repro.sim.faults import FaultController


@dataclass
class ExperimentResult:
    """Outcome of replaying one workload against one algorithm.

    Attributes:
        algorithm: the algorithm's registry name.
        topology: short description of the logical topology.
        workload: short description of the workload.
        completed_entries: critical-section entries completed.
        total_messages: protocol messages sent.
        messages_per_entry: ``total_messages / completed_entries``.
        messages_by_type: per-message-type send counts.
        mean_waiting_time: average request-to-entry time, or ``None`` on
            metrics-free (fast path) runs where it is not measured.
        sync_delays: observed synchronization delays (time units).
        max_sync_delay: largest synchronization delay observed.
        entry_order: nodes in the order they entered the critical section.
        finished_at: virtual time at which the last event was processed.
        fault_summary: present only on fault-injected runs — the
            :class:`~repro.sim.faults.FaultController` summary (per-category
            fault counts, fault-log sha256, crashed nodes, recovery outcome)
            merged with the driver's own casualty counters (requests lost at
            crashed nodes, nodes left unserved or backlogged, any
            ProtocolError the faults provoked).
    """

    algorithm: str
    topology: str
    workload: str
    completed_entries: int
    total_messages: int
    messages_per_entry: float
    messages_by_type: Dict[str, int]
    mean_waiting_time: Optional[float]
    sync_delays: List[float]
    max_sync_delay: Optional[float]
    entry_order: List[int]
    finished_at: float
    fault_summary: Optional[Dict[str, Any]] = None

    @property
    def mean_sync_delay(self) -> Optional[float]:
        """Average synchronization delay, or ``None`` if no entry waited."""
        if not self.sync_delays:
            return None
        return sum(self.sync_delays) / len(self.sync_delays)

    def summary_row(self) -> Dict[str, Any]:
        """Compact dictionary used by comparison tables.

        Fault-free rows are unchanged from earlier releases; fault-injected
        runs append a ``faults`` column so existing documents stay
        byte-identical.
        """
        row = {
            "algorithm": self.algorithm,
            "entries": self.completed_entries,
            "messages": self.total_messages,
            "messages_per_entry": round(self.messages_per_entry, 3),
            "mean_sync_delay": (
                round(self.mean_sync_delay, 3) if self.mean_sync_delay is not None else None
            ),
            "max_sync_delay": self.max_sync_delay,
            "mean_waiting_time": (
                round(self.mean_waiting_time, 3)
                if self.mean_waiting_time is not None
                else None
            ),
        }
        if self.fault_summary is not None:
            row["faults"] = self.fault_summary
        return row


class ExperimentDriver:
    """Replays a :class:`Workload` against a :class:`MutexSystem`.

    Args:
        system: the system under test.
        workload: the request schedule to replay — a materialised
            :class:`Workload` (bulk-loaded into the engine up front) or a
            :class:`~repro.workload.streaming.StreamingWorkload`
            (chunk-loaded one batch at a time so peak RSS stays bounded by
            the chunk size; how the million-node tier replays heavy demand).
        scheduler: the engine's pending-event store for this replay —
            ``"auto"`` (default) picks the O(1) bucket ring when the whole
            scenario (latency model, workload arrival grid, CS hold times)
            falls on a discrete time lattice *and* the run is in the ring's
            measured regime: the algorithm fans messages out densely
            (``system.dense_message_traffic`` — the broadcast/quorum
            baselines, whose same-tick delivery batches are where the ring
            beats the heap) or the pre-scheduled arrival backlog is at least
            ``RING_ARRIVAL_THRESHOLD`` requests deep (the 100k-node tier,
            where heap pushes walk a far-past-cache working set).
            Token-passing algorithms over modest backlogs spread events
            thinly over virtual time, where the heap's C-level pops win and
            the heap is kept.  ``"heap"``/``"ring"`` force a choice.
            The swap only happens while the engine's queue is empty (always
            true for a freshly built system), so it can never reorder events
            — the replay outcome is byte-identical either way, CI-gated.
    """

    def __init__(
        self,
        system: MutexSystem,
        workload: Workload,
        *,
        scheduler: str = "auto",
        faults: Optional["FaultController"] = None,
    ) -> None:
        self.system = system
        self.workload = workload
        self.faults = faults
        # Set when the controller arms: the injector the crash-stop gates in
        # _issue_or_queue/_release consult.  None on fault-free runs, so the
        # hot paths pay a single identity test.
        self._fault_network = None
        self._lost_requests = 0
        self.entry_order: List[int] = []
        self._nodes = system.nodes  # direct map: skip system.node() per event
        # Requests waiting because their node is still busy with an earlier
        # one.  Adaptive per-node storage: the first backlogged request is
        # stored bare, a deque is allocated only when a second one arrives.
        # Under saturated demand at large n almost every node has exactly one
        # queued request, and a million empty-ish deques would cost ~600 MB.
        self._backlog: Dict[int, Union[CSRequest, Deque[CSRequest]]] = {}
        # The request currently being served (or waited on) per node.
        self._active: Dict[int, CSRequest] = {}
        system._on_enter = self._handle_enter  # driver owns the enter hook
        # Columnar (compact-backend) systems route every node's enter hook
        # through one state object; object-backend systems rebind per node.
        state = system.compact_state
        self._compact = state
        if state is not None:
            state.on_enter = self._handle_enter
        else:
            for node in system.nodes.values():
                node._on_enter = self._handle_enter
        engine = system.engine
        if len(engine.scheduler) == 0 and not (
            scheduler == "auto" and engine.scheduler_kind != "heap"
        ):
            # Scenario-aware selection: only the driver sees the latency
            # model, the workload, and the algorithm together.  A caller who
            # installed a non-default scheduler explicitly keeps it under
            # "auto".
            mode = scheduler
            # For a streamed workload the engine never holds more than one
            # chunk of pre-scheduled arrivals, so the chunk size — not the
            # total request count — is the backlog depth the ring's measured
            # ≥200k-request regime is about.
            depth = len(workload)
            chunk = getattr(workload, "chunk_requests", None)
            if chunk:
                depth = min(depth, chunk)
            if (
                mode == "auto"
                # Declared once on the system class (the registry's
                # capability metadata), so no getattr probing here.
                and not system.dense_message_traffic
                and depth < RING_ARRIVAL_THRESHOLD
            ):
                # Sparse token-passing traffic over a modest backlog: the
                # heap's C-level pops win (see RING_ARRIVAL_THRESHOLD).
                mode = "heap"
            chosen = make_scheduler(
                mode, latency=system.network.latency, workload=workload
            )
            if chosen.kind != engine.scheduler_kind or scheduler != "auto":
                engine.use_scheduler(chosen)

    @classmethod
    def from_spec(cls, spec) -> "ExperimentDriver":
        """Build system and workload from an :class:`~repro.spec.ExperimentSpec`.

        The spec carries the scheduler choice too, so
        ``ExperimentDriver.from_spec(spec).run()`` is the whole replay.
        A spec with a :class:`~repro.spec.FaultSpec` gets a
        :class:`~repro.sim.faults.FaultController` seeded from the spec,
        armed when :meth:`run` starts.
        """
        system, workload = spec.build()
        faults = None
        if spec.faults is not None:
            from repro.sim.faults import FaultController

            faults = FaultController(spec.faults, name=spec.name)
        return cls(system, workload, scheduler=spec.scheduler, faults=faults)

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #
    def run(self, *, max_events: int = 5_000_000) -> ExperimentResult:
        """Replay the workload to completion and return the result.

        Raises:
            ExperimentError: if some requests are never granted (deadlock or
                starvation in the algorithm under test) or the event budget is
                exhausted.  On fault-injected runs incompleteness is the
                *measurement*, not an error: unserved and backlogged nodes are
                reported in ``fault_summary`` instead of raising, and a
                :class:`~repro.exceptions.ProtocolError` provoked by the
                faults ends the run and is recorded the same way.
        """
        engine = self.system.engine
        faults = self.faults
        if faults is not None:
            # Armed after the scheduler is fixed (in __init__) and before the
            # arrivals load, so fault events claim the same engine sequence
            # numbers on every replay, whatever the scheduler or worker count.
            faults.arm(self.system, self)
            self._fault_network = faults.network
        self._load_arrivals(engine)
        # Drive through the system's run() (not the engine directly) so that
        # systems which interleave invariant checking with event processing
        # keep doing so under the driver.
        protocol_error: Optional[str] = None
        try:
            processed = self.system.run(max_events=max_events)
        except ProtocolError as exc:
            if faults is None:
                raise
            # Faults can legitimately provoke protocol violations in the
            # baselines (e.g. a dropped reply desynchronizing a quorum); the
            # violation is part of the degradation measurement.
            protocol_error = str(exc)
            processed = engine.processed_events
        if engine.pending_events > 0 and protocol_error is None:
            raise ExperimentError(
                f"{self.system.algorithm_name}: event budget of {max_events} exhausted "
                f"after {processed} events; the run did not finish"
            )
        fault_summary: Optional[Dict[str, Any]] = None
        if faults is not None:
            unserved, backlog = self._completion_state()
            fault_summary = faults.summary()
            fault_summary["lost_requests"] = self._lost_requests
            fault_summary["unserved_nodes"] = len(unserved)
            fault_summary["backlogged_nodes"] = len(backlog)
            fault_summary["protocol_error"] = protocol_error
        else:
            self._verify_completion()
        metrics = self.system.metrics
        if metrics is not None:
            return ExperimentResult(
                algorithm=self.system.algorithm_name,
                topology=self.system.topology.describe(),
                workload=self.workload.description,
                completed_entries=metrics.completed_entries,
                total_messages=metrics.total_messages,
                messages_per_entry=metrics.messages_per_entry,
                messages_by_type=metrics.messages_by_type,
                mean_waiting_time=metrics.mean_waiting_time(),
                sync_delays=metrics.sync_delays,
                max_sync_delay=metrics.max_sync_delay,
                entry_order=list(self.entry_order),
                finished_at=engine.now,
                fault_summary=fault_summary,
            )
        # Metrics-free (fast path) run: derive the counts the substrate still
        # tracks for free; per-entry timing statistics are unavailable.
        network = self.system.network
        if self._compact is not None:
            entries = self._compact.total_entries
        else:
            entries = sum(node.cs_entries for node in self.system.nodes.values())
        return ExperimentResult(
            algorithm=self.system.algorithm_name,
            topology=self.system.topology.describe(),
            workload=self.workload.description,
            completed_entries=entries,
            total_messages=network.messages_sent,
            messages_per_entry=(network.messages_sent / entries) if entries else 0.0,
            messages_by_type={},
            mean_waiting_time=None,  # not measured without a collector
            sync_delays=[],
            max_sync_delay=None,
            entry_order=list(self.entry_order),
            finished_at=engine.now,
            fault_summary=fault_summary,
        )

    # ------------------------------------------------------------------ #
    # arrival loading
    # ------------------------------------------------------------------ #
    def _load_arrivals(self, engine) -> None:
        """Schedule the workload's arrivals (also the setup-benchmark hook).

        Materialised workloads load in one ``schedule_lite_bulk`` call — one
        shared callback with the request as the event payload, no per-request
        closure allocation, and the heap heapifies once (the ring appends
        straight into its buckets).  Streaming workloads chunk-load instead:
        see :meth:`_load_streaming`.  Arrival times are validated by the
        workload, not re-checked per request; the head check below covers
        every request because schedules are arrival-ordered.
        """
        if isinstance(self.workload, StreamingWorkload):
            self._load_streaming(engine)
            return
        arrival = self._issue_or_queue
        now = engine.now
        first = next(iter(self.workload), None)
        if first is not None and first.arrival_time < now:
            raise ExperimentError(
                f"request at {first.arrival_time} is in the past "
                f"(engine time {now})"
            )
        engine.schedule_lite_bulk(
            (request.arrival_time, arrival, request) for request in self.workload
        )

    def _load_streaming(self, engine) -> None:
        """Chunk-load a :class:`StreamingWorkload`: one batch in flight.

        The first batch is bulk-loaded immediately; each further batch is
        loaded by a lite "loader" event scheduled at the previous batch's
        last arrival time.  The loader's sequence number is allocated after
        that batch's arrivals, so it fires after every equal-time arrival and
        before anything later — the next batch (whose times are >= the
        loader's time) can always be scheduled safely.  Peak RSS is thereby
        bounded by one chunk of queued arrivals regardless of workload
        length.  Both schedulers see the identical (time, priority, sequence)
        stream, so heap/ring replays stay byte-identical (CI-gated).
        """
        arrival = self._issue_or_queue
        batches = self.workload.iter_batches()
        pending = next(batches, None)
        if pending is None:
            return
        if pending[0].arrival_time < engine.now:
            raise ExperimentError(
                f"request at {pending[0].arrival_time} is in the past "
                f"(engine time {engine.now})"
            )

        def load(_payload) -> None:
            nonlocal pending
            batch = pending
            pending = next(batches, None)
            if pending is not None and (
                pending[0].arrival_time < batch[-1].arrival_time
            ):
                raise WorkloadError(
                    f"{self.workload.description or 'streaming workload'}: "
                    f"batch starting at {pending[0].arrival_time} precedes "
                    f"the previous batch's last arrival "
                    f"{batch[-1].arrival_time}"
                )
            engine.schedule_lite_bulk(
                (request.arrival_time, arrival, request) for request in batch
            )
            if pending is not None:
                engine.schedule_lite(batch[-1].arrival_time, load, None)

        load(None)

    # ------------------------------------------------------------------ #
    # event plumbing
    # ------------------------------------------------------------------ #
    def _make_arrival(self, request: CSRequest):
        """Closure form of :meth:`_arrival` for callers scheduling by hand."""

        def arrival(_event) -> None:
            self._issue_or_queue(request)

        return arrival

    def _issue_or_queue(self, request: CSRequest) -> None:
        node_id = request.node
        fault_network = self._fault_network
        if fault_network is not None and node_id in fault_network._crashed:
            # Crash-stop: a dead node issues nothing.  The request is counted
            # as lost rather than backlogged — a restart does not resurrect it.
            self._lost_requests += 1
            return
        state = self._compact
        if state is not None:
            # Columnar backend: probe the flag byte directly instead of
            # materialising a node view per request.
            busy = node_id in self._active or state._flags[node_id] & 6
        else:
            node = self._nodes[node_id]
            busy = (
                node_id in self._active
                or node.requesting
                or node.in_critical_section
            )
        if busy:
            backlog = self._backlog
            queued = backlog.get(node_id)
            if queued is None:
                backlog[node_id] = request
            elif type(queued) is deque:
                queued.append(request)
            else:
                backlog[node_id] = deque((queued, request))
            return
        self._active[node_id] = request
        if state is not None:
            state.request_cs(node_id)
        else:
            node.request_cs()

    def _handle_enter(self, node_id: int, time: float) -> None:
        self.entry_order.append(node_id)
        if self.faults is not None:
            self.faults.note_entry(node_id, time)
        request = self._active.get(node_id)
        duration = request.cs_duration if request is not None else 1.0
        # Inline schedule_lite: one release per critical-section entry makes
        # this the second-hottest scheduling site after message delivery.
        engine = self.system.engine
        sequence = engine._sequence + 1
        engine._sequence = sequence
        engine._push((engine._now + duration, 0, sequence, self._release, node_id))

    def _release(self, node_id: int) -> None:
        fault_network = self._fault_network
        if fault_network is not None and node_id in fault_network._crashed:
            # The node died inside its critical section: it never releases,
            # and the token (if it held one) died with it — exactly the
            # liveness hole recovery exists to measure.  Its backlog stays
            # queued and is reported as backlogged at the end of the run.
            return
        state = self._compact
        if state is not None:
            state.release_cs(node_id)
        else:
            self._nodes[node_id].release_cs()
        self._active.pop(node_id, None)
        backlog = self._backlog
        queued = backlog.get(node_id)
        if queued is None:
            return
        if type(queued) is deque:
            request = queued.popleft()
            if not queued:
                del backlog[node_id]
        else:
            request = queued
            del backlog[node_id]
        self._issue_or_queue(request)

    def _completion_state(self) -> "tuple[List[int], List[int]]":
        state = self._compact
        if state is not None:
            # C-level column scan: the clean-finish case costs one translate
            # pass instead of materialising a view per node.
            unserved = state.busy_nodes()
        else:
            unserved = [
                node_id
                for node_id, node in self.system.nodes.items()
                if node.requesting or node.in_critical_section
            ]
        backlog = sorted(node for node, queue in self._backlog.items() if queue)
        return unserved, backlog

    def _verify_completion(self) -> None:
        unserved, backlog = self._completion_state()
        if unserved or backlog:
            raise ExperimentError(
                f"{self.system.algorithm_name}: workload did not complete; "
                f"nodes still waiting or executing: {unserved}, backlogged nodes: {backlog}"
            )


def run_experiment(
    algorithm: Union[str, Type[MutexSystem], "ExperimentSpec"],
    topology: Optional[Topology] = None,
    workload: Optional[Workload] = None,
    *,
    latency: Optional[LatencyModel] = None,
    record_trace: bool = False,
    collect_metrics: bool = True,
    scheduler: str = "auto",
) -> ExperimentResult:
    """Convenience wrapper: build the system, replay the workload, return results.

    Args:
        algorithm: a registry name (``"dag"``, ``"raymond"``, ...), a
            :class:`MutexSystem` subclass, or a complete
            :class:`~repro.spec.ExperimentSpec` — in which case every other
            argument must be left at its default (the spec already carries
            them) and the spec is replayed as-is.
        topology: the logical topology (edges are ignored by the algorithms
            that assume a fully connected logical network).
        workload: the request schedule to replay.
        latency: optional network latency model.
        record_trace: record a full protocol trace on the system (accessible
            via ``result`` only indirectly; use :class:`ExperimentDriver`
            directly when the trace itself is needed).
        scheduler: engine scheduler choice (see :class:`ExperimentDriver`);
            the replay outcome is identical for every value.
    """
    from repro.spec import ExperimentSpec

    if isinstance(algorithm, ExperimentSpec):
        if (
            topology is not None
            or workload is not None
            or latency is not None
            or record_trace
            or not collect_metrics
            or scheduler != "auto"
        ):
            raise ExperimentError(
                "run_experiment(spec): the spec already carries the topology, "
                "workload, latency, scheduler, trace and metrics choices; "
                "pass only the spec (edit the spec to change them)"
            )
        return algorithm.run()
    if topology is None or workload is None:
        raise ExperimentError(
            "run_experiment needs a topology and a workload unless given an "
            "ExperimentSpec"
        )
    system_class = registry.get(algorithm) if isinstance(algorithm, str) else algorithm
    system = system_class(
        topology,
        latency=latency,
        record_trace=record_trace,
        collect_metrics=collect_metrics,
    )
    driver = ExperimentDriver(system, workload, scheduler=scheduler)
    return driver.run()
