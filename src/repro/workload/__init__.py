"""Workload generation and the experiment driver.

The paper's Chapter 6 numbers are parameterised by *who* requests the critical
section, *when*, and *where the token happens to be*.  This package expresses
those choices as data:

* :class:`~repro.workload.requests.CSRequest` / :class:`~repro.workload
  .requests.Workload` — a schedule of critical-section requests;
* :class:`~repro.workload.generator.WorkloadGenerator` — Poisson, uniform,
  bursty and hot-spot arrival patterns, all seeded and reproducible;
* :class:`~repro.workload.driver.ExperimentDriver` — replays one workload
  against one algorithm on one topology and returns a
  :class:`~repro.workload.driver.ExperimentResult`;
* :mod:`~repro.workload.scenarios` — the canned scenarios used by the
  benchmark suite (worst-case placement, uniform single requests, heavy
  demand, ...).
"""

from repro.workload.driver import ExperimentDriver, ExperimentResult, run_experiment
from repro.workload.generator import WorkloadGenerator
from repro.workload.requests import CSRequest, Workload
from repro.workload.streaming import DEFAULT_CHUNK_REQUESTS, StreamingWorkload

__all__ = [
    "CSRequest",
    "Workload",
    "StreamingWorkload",
    "DEFAULT_CHUNK_REQUESTS",
    "WorkloadGenerator",
    "ExperimentDriver",
    "ExperimentResult",
    "run_experiment",
]
