"""Lazily generated workloads: arrival batches instead of request lists.

A materialised :class:`~repro.workload.requests.Workload` holds one
:class:`~repro.workload.requests.CSRequest` object per request.  At the
million-node tier that is the dominant setup cost: a heavy-demand schedule is
millions of requests, i.e. gigabytes of dataclass instances and a multi-second
construction — for objects whose only job is to be drained through the event
queue once.

A :class:`StreamingWorkload` replaces the list with a *batch factory*: a
callable returning a fresh iterator of arrival-ordered request batches.  The
experiment driver loads one batch into the engine at a time (via
``schedule_lite_bulk``) and schedules the next load as a lite event at the
current batch's last arrival time, so at any moment the process holds at most
one batch of request objects plus whatever is genuinely in flight — peak RSS
is bounded by the chunk size, not the workload length.

Contract (checked where cheap, tested everywhere):

* batches are non-empty lists of :class:`CSRequest`, ordered by
  ``(arrival_time, node)`` within a batch, and non-decreasing across batch
  boundaries (the driver verifies the boundary condition as it loads);
* the factory is *re-iterable*: every call replays the identical schedule,
  which is what lets best-of-N benchmarking and the heap/ring byte-identity
  gates work on streamed workloads exactly as on materialised ones;
* ``len()`` is the exact total request count, known up front.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.exceptions import WorkloadError
from repro.workload.requests import CSRequest

#: Default number of requests the driver keeps in the engine per batch.  At
#: ~90 bytes per queued lite entry plus ~230 bytes per request object this
#: bounds the arrival working set around 30 MB, while staying large enough
#: that the per-batch Python overhead (one lite event + one bulk load) is
#: noise.
DEFAULT_CHUNK_REQUESTS = 100_000


class StreamingWorkload:
    """An arrival-ordered request schedule produced in batches.

    Args:
        batch_factory: zero-argument callable returning a fresh iterator of
            request batches (lists of :class:`CSRequest`).
        total_requests: exact number of requests the factory yields in full.
        description: human-readable summary (mirrors ``Workload.description``).
        time_lattice_hint: a time quantum every arrival time and CS duration
            is an exact multiple of, or ``None`` when the schedule is
            off-lattice.  Lets scheduler auto-selection answer the lattice
            question without iterating millions of requests.
        chunk_requests: the batch size the factory was built with; the driver
            uses it as the effective backlog depth for scheduler selection
            (a streamed workload never piles more than one chunk of arrivals
            into the pending queue).
    """

    __slots__ = (
        "_batch_factory",
        "_total",
        "description",
        "time_lattice_hint",
        "chunk_requests",
    )

    def __init__(
        self,
        batch_factory: Callable[[], Iterator[List[CSRequest]]],
        *,
        total_requests: int,
        description: str = "",
        time_lattice_hint: Optional[float] = None,
        chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
    ) -> None:
        if total_requests < 0:
            raise WorkloadError(
                f"total_requests must be >= 0, got {total_requests}"
            )
        if chunk_requests < 1:
            raise WorkloadError(
                f"chunk_requests must be >= 1, got {chunk_requests}"
            )
        self._batch_factory = batch_factory
        self._total = int(total_requests)
        self.description = description
        self.time_lattice_hint = time_lattice_hint
        self.chunk_requests = int(chunk_requests)

    def __len__(self) -> int:
        return self._total

    def iter_batches(self) -> Iterator[List[CSRequest]]:
        """A fresh pass over the batches (empty batches are skipped)."""
        for batch in self._batch_factory():
            if batch:
                yield batch

    def __iter__(self) -> Iterator[CSRequest]:
        """Flatten the batches — compatibility with ``Workload`` consumers.

        Iterating a million-request stream materialises nothing, but costs a
        Python iteration per request; large-scale paths should stay on
        :meth:`iter_batches`.
        """
        for batch in self.iter_batches():
            yield from batch
