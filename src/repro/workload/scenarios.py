"""Canned experiment scenarios used by the benchmark harness and the examples.

Each scenario corresponds to a setting described in the paper's evaluation:
worst-case placement for the upper bound (§6.1), uniformly random token
placement with isolated requests for the average bound (§6.2), all nodes
requesting continuously for heavy demand (§6.2), and back-to-back requests for
the synchronization delay (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Type, Union

from repro.baselines.base import MutexSystem, registry
from repro.sim.latency import ConstantLatency
from repro.topology.base import Topology
from repro.topology.metrics import eccentricity, path_between
from repro.workload.driver import ExperimentResult, run_experiment
from repro.workload.generator import WorkloadGenerator
from repro.workload.requests import CSRequest, Workload

AlgorithmSpec = Union[str, Type[MutexSystem]]


def worst_case_placement(topology: Topology) -> Tuple[Topology, Workload]:
    """Token and requester at opposite ends of the longest path (§6.1).

    Returns the topology re-rooted so the token holder is one endpoint of a
    diameter path and a single-request workload issued by the other endpoint.
    """
    # Find a diameter endpoint pair: the node with maximum eccentricity and
    # the farthest node from it.
    nodes = list(topology.nodes)
    first = max(nodes, key=lambda node: eccentricity(topology, node))
    # Farthest node from `first`:
    farthest = max(nodes, key=lambda node: len(path_between(topology, first, node)))
    holder_topology = topology.with_token_holder(first)
    workload = Workload.single(farthest)
    return holder_topology, workload


def single_request_run(
    algorithm: AlgorithmSpec,
    topology: Topology,
    requester: int,
) -> ExperimentResult:
    """One isolated request by ``requester`` on an otherwise idle system."""
    return run_experiment(
        algorithm,
        topology,
        Workload.single(requester),
        latency=ConstantLatency(1.0),
    )


def average_messages_over_placements(
    algorithm: AlgorithmSpec,
    topology: Topology,
) -> float:
    """Average messages per entry over all (token placement, requester) pairs.

    This is the §6.2 experiment: every node is equally likely to hold the
    token, every node is equally likely to be the requester, and each request
    happens on an otherwise idle system.
    """
    total_messages = 0
    runs = 0
    for holder in topology.nodes:
        rooted = topology.with_token_holder(holder)
        for requester in topology.nodes:
            result = single_request_run(algorithm, rooted, requester)
            total_messages += result.total_messages
            runs += 1
    return total_messages / runs


def heavy_demand_run(
    algorithm: AlgorithmSpec,
    topology: Topology,
    *,
    rounds: int = 5,
    cs_duration: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    """Every node requests in every round, back to back (§6.2 heavy demand)."""
    generator = WorkloadGenerator(topology.nodes, seed=seed)
    workload = generator.heavy_demand(rounds=rounds, cs_duration=cs_duration)
    return run_experiment(algorithm, topology, workload, latency=ConstantLatency(1.0))


def sync_delay_run(
    algorithm: AlgorithmSpec,
    topology: Topology,
    *,
    first: Optional[int] = None,
    second: Optional[int] = None,
    cs_duration: float = 50.0,
) -> ExperimentResult:
    """Two requests where the second must wait for the first (§6.3).

    The first requester occupies the critical section long enough for the
    second request to be fully queued before the release, so the measured gap
    between exit and the next entry is exactly the synchronization delay.

    By default both requesters are chosen among nodes *other than* the initial
    token holder (when the system is large enough), since a releasing
    coordinator / token holder would short-circuit part of the hand-off and
    understate the delay the paper describes.
    """
    nodes = list(topology.nodes)
    candidates = [node for node in nodes if node != topology.token_holder] or nodes
    first = candidates[0] if first is None else first
    second = candidates[-1] if second is None else second
    if first == second:
        raise ValueError("synchronization delay needs two distinct requesters")
    workload = Workload(
        requests=(
            CSRequest(node=first, arrival_time=0.0, cs_duration=cs_duration),
            CSRequest(node=second, arrival_time=1.0, cs_duration=1.0),
        ),
        description=f"sync-delay pair: {first} then {second}",
    )
    return run_experiment(algorithm, topology, workload, latency=ConstantLatency(1.0))


def poisson_run(
    algorithm: AlgorithmSpec,
    topology: Topology,
    *,
    total_requests: int = 100,
    mean_interarrival: float = 5.0,
    cs_duration: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    """A Poisson workload replayed against one algorithm (used by E9)."""
    generator = WorkloadGenerator(topology.nodes, seed=seed)
    workload = generator.poisson(
        total_requests=total_requests,
        mean_interarrival=mean_interarrival,
        cs_duration=cs_duration,
    )
    return run_experiment(algorithm, topology, workload, latency=ConstantLatency(1.0))


def compare_algorithms(
    topology: Topology,
    workload: Workload,
    *,
    algorithms: Optional[Sequence[str]] = None,
) -> List[ExperimentResult]:
    """Replay the same workload against several algorithms (default: all)."""
    names = list(algorithms) if algorithms is not None else registry.names()
    return [
        run_experiment(name, topology, workload, latency=ConstantLatency(1.0))
        for name in names
    ]
