"""Reproducible workload generators.

The average-bound and heavy-demand analyses of Section 6.2 assume particular
request patterns ("each node equally likely to hold the token", "heavy
demand").  These generators produce such patterns as explicit
:class:`~repro.workload.requests.Workload` schedules so that the *same*
schedule can be replayed against every algorithm.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.exceptions import WorkloadError
from repro.sim.rng import SeededRNG
from repro.workload.requests import CSRequest, Workload
from repro.workload.streaming import DEFAULT_CHUNK_REQUESTS, StreamingWorkload


class WorkloadGenerator:
    """Factory for randomised workloads, deterministic per seed."""

    def __init__(self, node_ids: Sequence[int], *, seed: int = 0) -> None:
        if not node_ids:
            raise WorkloadError("workloads need at least one node")
        self.node_ids = tuple(node_ids)
        self._rng = SeededRNG(seed, label="workload")

    # ------------------------------------------------------------------ #
    # arrival patterns
    # ------------------------------------------------------------------ #
    def poisson(
        self,
        *,
        total_requests: int,
        mean_interarrival: float,
        cs_duration: float = 1.0,
        nodes: Optional[Sequence[int]] = None,
    ) -> Workload:
        """Poisson arrivals over uniformly chosen nodes.

        ``mean_interarrival`` controls the load: small values produce heavy
        contention (many requests outstanding at once), large values keep the
        system mostly idle between requests.
        """
        if total_requests < 0:
            raise WorkloadError(f"total_requests must be >= 0, got {total_requests}")
        candidates = tuple(nodes) if nodes is not None else self.node_ids
        rng = self._rng.child("poisson")
        requests = []
        time = 0.0
        for _ in range(total_requests):
            time += rng.exponential(mean_interarrival)
            requests.append(
                CSRequest(node=rng.choice(candidates), arrival_time=time, cs_duration=cs_duration)
            )
        return Workload(
            requests=tuple(requests),
            description=(
                f"poisson: {total_requests} requests, mean interarrival "
                f"{mean_interarrival}, cs={cs_duration}"
            ),
        )

    def uniform_single_requests(
        self,
        *,
        cs_duration: float = 1.0,
        spacing: float = 1000.0,
    ) -> Workload:
        """Each node issues exactly one request, far apart in time.

        With ``spacing`` much larger than the diameter and CS duration, every
        request finds an otherwise idle system — the light-load regime of the
        Section 6.2 average-bound analysis.
        """
        requests = [
            CSRequest(node=node, arrival_time=index * spacing, cs_duration=cs_duration)
            for index, node in enumerate(self._rng.child("order").shuffle(self.node_ids))
        ]
        return Workload(
            requests=tuple(requests),
            description=f"one isolated request per node, spacing {spacing}",
        )

    def heavy_demand(
        self,
        *,
        rounds: int,
        cs_duration: float = 1.0,
    ) -> Workload:
        """Every node requests in every round, all rounds back to back.

        This is the paper's "heavy demand" regime: the token never idles and
        each entry amortises to at most three messages on the star topology.
        """
        if rounds < 1:
            raise WorkloadError(f"rounds must be >= 1, got {rounds}")
        requests = []
        for round_index in range(rounds):
            for node in self.node_ids:
                requests.append(
                    CSRequest(
                        node=node,
                        arrival_time=float(round_index),
                        cs_duration=cs_duration,
                    )
                )
        return Workload(
            requests=tuple(requests),
            description=f"heavy demand: {rounds} rounds x {len(self.node_ids)} nodes",
        )

    def heavy_demand_stream(
        self,
        *,
        rounds: int,
        cs_duration: float = 1.0,
        chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
    ) -> StreamingWorkload:
        """Streaming form of :meth:`heavy_demand`: batches, not a list.

        Yields the identical schedule — every node requests in every round,
        in ``(arrival_time, node)`` order — but materialises at most
        ``chunk_requests`` request objects at a time, which is what lets the
        million-node tier replay heavy demand in bounded memory.  The batch
        iterator is re-iterable and deterministic (no randomness at all).
        """
        if rounds < 1:
            raise WorkloadError(f"rounds must be >= 1, got {rounds}")
        if chunk_requests < 1:
            raise WorkloadError(
                f"chunk_requests must be >= 1, got {chunk_requests}"
            )
        # A materialised Workload sorts by (arrival_time, node); emitting the
        # per-round node sweep in ascending node order reproduces that
        # ordering exactly, so the streamed and materialised schedules are
        # interchangeable request for request.
        ordered = tuple(sorted(self.node_ids))

        def batches():
            batch = []
            append = batch.append
            for round_index in range(rounds):
                arrival = float(round_index)
                for node in ordered:
                    append(
                        CSRequest(
                            node=node,
                            arrival_time=arrival,
                            cs_duration=cs_duration,
                        )
                    )
                    if len(batch) >= chunk_requests:
                        yield batch
                        batch = []
                        append = batch.append
            if batch:
                yield batch

        lattice = 1.0 if float(cs_duration).is_integer() else None
        return StreamingWorkload(
            batches,
            total_requests=rounds * len(ordered),
            description=(
                f"heavy demand: {rounds} rounds x {len(ordered)} nodes "
                f"(streamed, chunk {chunk_requests})"
            ),
            time_lattice_hint=lattice,
            chunk_requests=chunk_requests,
        )

    def poisson_stream(
        self,
        *,
        total_requests: int,
        mean_interarrival: float,
        cs_duration: float = 1.0,
        nodes: Optional[Sequence[int]] = None,
        chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
    ) -> StreamingWorkload:
        """Streaming form of :meth:`poisson` (same seed, same schedule).

        Each pass re-derives the ``"poisson"`` child stream from the
        generator's seed, so iterating twice — or comparing against the
        materialised :meth:`poisson` built from an equal-seed generator —
        yields request-for-request identical arrivals.
        """
        if total_requests < 0:
            raise WorkloadError(f"total_requests must be >= 0, got {total_requests}")
        if chunk_requests < 1:
            raise WorkloadError(
                f"chunk_requests must be >= 1, got {chunk_requests}"
            )
        candidates = tuple(nodes) if nodes is not None else self.node_ids
        root = self._rng

        def batches():
            rng = root.child("poisson")
            batch = []
            append = batch.append
            time = 0.0
            for _ in range(total_requests):
                time += rng.exponential(mean_interarrival)
                append(
                    CSRequest(
                        node=rng.choice(candidates),
                        arrival_time=time,
                        cs_duration=cs_duration,
                    )
                )
                if len(batch) >= chunk_requests:
                    yield batch
                    batch = []
                    append = batch.append
            if batch:
                yield batch

        return StreamingWorkload(
            batches,
            total_requests=total_requests,
            description=(
                f"poisson: {total_requests} requests, mean interarrival "
                f"{mean_interarrival}, cs={cs_duration} "
                f"(streamed, chunk {chunk_requests})"
            ),
            time_lattice_hint=None,
            chunk_requests=chunk_requests,
        )

    def hotspot(
        self,
        *,
        total_requests: int,
        hot_nodes: Sequence[int],
        hot_fraction: float = 0.8,
        mean_interarrival: float = 5.0,
        cs_duration: float = 1.0,
    ) -> Workload:
        """A skewed workload where a few nodes issue most of the requests.

        Useful for showing how the DAG re-orients itself toward the active
        region of the tree (requests from the hot region become cheap).
        """
        if not 0.0 <= hot_fraction <= 1.0:
            raise WorkloadError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
        missing = [node for node in hot_nodes if node not in self.node_ids]
        if missing:
            raise WorkloadError(f"hot nodes {missing} are not part of the node set")
        cold_nodes = [node for node in self.node_ids if node not in set(hot_nodes)] or list(
            hot_nodes
        )
        rng = self._rng.child("hotspot")
        requests = []
        time = 0.0
        for _ in range(total_requests):
            time += rng.exponential(mean_interarrival)
            pool = tuple(hot_nodes) if rng.random() < hot_fraction else tuple(cold_nodes)
            requests.append(
                CSRequest(node=rng.choice(pool), arrival_time=time, cs_duration=cs_duration)
            )
        return Workload(
            requests=tuple(requests),
            description=(
                f"hotspot: {total_requests} requests, {hot_fraction:.0%} from {list(hot_nodes)}"
            ),
        )

    def bursty(
        self,
        *,
        total_requests: int,
        mean_burst_size: float = 8.0,
        burst_interarrival: float = 0.5,
        mean_idle_gap: float = 50.0,
        cs_duration: float = 1.0,
        nodes: Optional[Sequence[int]] = None,
    ) -> Workload:
        """On/off bursts: dense request clusters separated by long idle gaps.

        Arrivals alternate between an *on* phase — a burst whose size is drawn
        from an exponential of mean ``mean_burst_size`` (at least one request)
        with exponential ``burst_interarrival`` spacing inside the burst — and
        an *off* phase, an exponential idle gap of mean ``mean_idle_gap``.
        With ``mean_idle_gap`` much larger than ``burst_interarrival`` this
        produces the bursty regime the steady Poisson workloads miss: the
        system is driven from idle into heavy contention and back every burst.
        """
        if total_requests < 0:
            raise WorkloadError(f"total_requests must be >= 0, got {total_requests}")
        if mean_burst_size < 1.0:
            raise WorkloadError(
                f"mean_burst_size must be >= 1, got {mean_burst_size}"
            )
        if burst_interarrival <= 0 or mean_idle_gap <= 0:
            raise WorkloadError(
                "burst_interarrival and mean_idle_gap must be positive, got "
                f"{burst_interarrival} and {mean_idle_gap}"
            )
        candidates = tuple(nodes) if nodes is not None else self.node_ids
        rng = self._rng.child("bursty")
        requests = []
        time = 0.0
        bursts = 0
        while len(requests) < total_requests:
            time += rng.exponential(mean_idle_gap)
            burst_size = max(1, round(rng.exponential(mean_burst_size)))
            bursts += 1
            for _ in range(min(burst_size, total_requests - len(requests))):
                time += rng.exponential(burst_interarrival)
                requests.append(
                    CSRequest(
                        node=rng.choice(candidates),
                        arrival_time=time,
                        cs_duration=cs_duration,
                    )
                )
        return Workload(
            requests=tuple(requests),
            description=(
                f"bursty: {total_requests} requests in {bursts} bursts "
                f"(mean size {mean_burst_size}, in-burst gap {burst_interarrival}, "
                f"idle gap {mean_idle_gap})"
            ),
        )

    def diurnal(
        self,
        *,
        total_requests: int,
        period: float = 200.0,
        mean_interarrival: float = 5.0,
        amplitude: float = 0.8,
        cs_duration: float = 1.0,
        nodes: Optional[Sequence[int]] = None,
    ) -> Workload:
        """Sinusoidal-rate arrivals: a seeded day/night demand curve.

        A non-homogeneous Poisson process whose instantaneous rate swings
        around the base rate ``1 / mean_interarrival``::

            rate(t) = (1 + amplitude * sin(2 * pi * t / period)) / mean_interarrival

        so each ``period`` of virtual time holds one full peak (rate up to
        ``(1 + amplitude)`` times base) and one trough (down to
        ``(1 - amplitude)`` times base) — the diurnal load shape the steady
        Poisson and on/off bursty tiers both miss.  Arrivals are drawn by
        Lewis–Shedler thinning: seeded candidates at the peak rate, accepted
        with probability ``rate(t) / peak_rate``, which keeps the schedule a
        pure function of the generator's seed.
        """
        if total_requests < 0:
            raise WorkloadError(f"total_requests must be >= 0, got {total_requests}")
        if period <= 0:
            raise WorkloadError(f"period must be positive, got {period}")
        if mean_interarrival <= 0:
            raise WorkloadError(
                f"mean_interarrival must be positive, got {mean_interarrival}"
            )
        if not 0.0 <= amplitude <= 1.0:
            raise WorkloadError(f"amplitude must be in [0, 1], got {amplitude}")
        candidates = tuple(nodes) if nodes is not None else self.node_ids
        rng = self._rng.child("diurnal")
        peak_rate = (1.0 + amplitude) / mean_interarrival
        angular = 2.0 * math.pi / period
        requests = []
        time = 0.0
        while len(requests) < total_requests:
            # Candidate stream at the constant peak rate...
            time += rng.exponential(1.0 / peak_rate)
            rate = (1.0 + amplitude * math.sin(angular * time)) / mean_interarrival
            # ...thinned down to the instantaneous sinusoidal rate.
            if rng.random() * peak_rate <= rate:
                requests.append(
                    CSRequest(
                        node=rng.choice(candidates),
                        arrival_time=time,
                        cs_duration=cs_duration,
                    )
                )
        return Workload(
            requests=tuple(requests),
            description=(
                f"diurnal: {total_requests} requests, period {period}, "
                f"mean interarrival {mean_interarrival}, amplitude {amplitude}"
            ),
        )

    def round_robin(
        self,
        *,
        rounds: int,
        spacing: float = 50.0,
        cs_duration: float = 1.0,
    ) -> Workload:
        """Nodes take turns requesting, one at a time, well separated."""
        if rounds < 1:
            raise WorkloadError(f"rounds must be >= 1, got {rounds}")
        requests = []
        slot = 0
        for _ in range(rounds):
            for node in self.node_ids:
                requests.append(
                    CSRequest(node=node, arrival_time=slot * spacing, cs_duration=cs_duration)
                )
                slot += 1
        return Workload(
            requests=tuple(requests),
            description=f"round robin: {rounds} rounds, spacing {spacing}",
        )
