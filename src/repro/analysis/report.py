"""Plain-text table rendering for benchmark output and EXPERIMENTS.md.

Kept dependency-free on purpose: the benchmark harness prints these tables to
stdout so the paper's tables can be regenerated with nothing but the standard
library installed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dictionaries as an aligned plain-text table.

    Args:
        rows: one mapping per row; missing keys render as empty cells.
        columns: column order; defaults to the keys of the first row.
        title: optional title printed above the table.

    Returns:
        A multi-line string (no trailing newline).
    """
    if not rows:
        return title or "(no rows)"
    column_names = list(columns) if columns is not None else list(rows[0].keys())
    rendered_rows = [
        {name: _render_cell(row.get(name, "")) for name in column_names} for row in rows
    ]
    widths = {
        name: max(len(name), *(len(row[name]) for row in rendered_rows))
        for name in column_names
    }
    header = " | ".join(name.ljust(widths[name]) for name in column_names)
    separator = "-+-".join("-" * widths[name] for name in column_names)
    body = [
        " | ".join(row[name].ljust(widths[name]) for name in column_names)
        for row in rendered_rows
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(header)
    lines.append(separator)
    lines.extend(body)
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Iterable[float]],
    *,
    x_label: str,
    x_values: Sequence[object],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render several named series against a shared x-axis as a table.

    Used for the figure-style outputs (message count vs N, etc.).
    """
    rows: List[Dict[str, object]] = []
    materialised = {name: list(values) for name, values in series.items()}
    for index, x_value in enumerate(x_values):
        row: Dict[str, object] = {x_label: x_value}
        for name, values in materialised.items():
            row[name] = round(values[index], precision) if index < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=[x_label, *materialised.keys()], title=title)


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
