"""Analytic bounds from Chapter 6 and measured-vs-theory comparison tools."""

from repro.analysis.theory import (
    AlgorithmBounds,
    average_messages_centralized_star,
    average_messages_dag_star,
    storage_overhead_table,
    sync_delay_bounds,
    upper_bound_table,
    upper_bound_messages,
)
from repro.analysis.summary import RunSummary, summarize_results
from repro.analysis.comparison import ComparisonRow, compare_measured_to_theory
from repro.analysis.report import format_table
from repro.analysis.sweep import (
    condition_rows,
    format_sweep_tables,
    sweep_conditions,
    sweep_summary_row,
)

__all__ = [
    "AlgorithmBounds",
    "upper_bound_messages",
    "upper_bound_table",
    "average_messages_dag_star",
    "average_messages_centralized_star",
    "sync_delay_bounds",
    "storage_overhead_table",
    "RunSummary",
    "summarize_results",
    "ComparisonRow",
    "compare_measured_to_theory",
    "format_table",
    "condition_rows",
    "format_sweep_tables",
    "sweep_conditions",
    "sweep_summary_row",
]
