"""Paper-vs-measured comparison rows.

EXPERIMENTS.md reports, for every table and figure, the value the paper quotes
and the value this reproduction measures.  These helpers compute those rows so
the benchmarks and the documentation never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.theory import upper_bound_messages
from repro.workload.driver import ExperimentResult


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured comparison entry.

    Attributes:
        label: what is being compared (algorithm or experiment label).
        paper_value: the value stated (or implied) by the paper.
        measured_value: the value this reproduction measured.
        unit: unit of both values (messages, messages/entry, time units, ...).
        within_bound: for bound-type paper values, whether the measurement
            respects the bound; for exact paper values, whether the measurement
            matches to within ``tolerance``.
    """

    label: str
    paper_value: float
    measured_value: float
    unit: str
    within_bound: bool

    def as_row(self) -> Dict[str, object]:
        """Row for :func:`repro.analysis.report.format_table`."""
        return {
            "experiment": self.label,
            "paper": round(self.paper_value, 3),
            "measured": round(self.measured_value, 3),
            "unit": self.unit,
            "ok": "yes" if self.within_bound else "NO",
        }


def compare_measured_to_theory(
    results: Sequence[ExperimentResult],
    *,
    n: int,
    diameter: int,
    unit: str = "messages/entry",
) -> List[ComparisonRow]:
    """Compare worst-case measurements against the Section 6.1 upper bounds.

    Each result's ``messages_per_entry`` is compared against the paper's upper
    bound for that algorithm at the given system size and diameter.
    """
    rows = []
    for result in results:
        bound = upper_bound_messages(result.algorithm, n=n, diameter=diameter)
        rows.append(
            ComparisonRow(
                label=result.algorithm,
                paper_value=bound,
                measured_value=result.messages_per_entry,
                unit=unit,
                within_bound=result.messages_per_entry <= bound + 1e-9,
            )
        )
    return rows


def compare_exact(
    label: str,
    paper_value: float,
    measured_value: float,
    *,
    unit: str,
    tolerance: float = 0.0,
) -> ComparisonRow:
    """A row for quantities the paper states exactly (e.g. ``3 - 5/N + 2/N²``)."""
    return ComparisonRow(
        label=label,
        paper_value=paper_value,
        measured_value=measured_value,
        unit=unit,
        within_bound=abs(paper_value - measured_value) <= tolerance + 1e-9,
    )


def compare_upper_bound(
    label: str,
    bound: float,
    measured_value: float,
    *,
    unit: str,
) -> ComparisonRow:
    """A row for quantities the paper bounds from above."""
    return ComparisonRow(
        label=label,
        paper_value=bound,
        measured_value=measured_value,
        unit=unit,
        within_bound=measured_value <= bound + 1e-9,
    )
