"""Comparison tables over merged sweep results.

A sweep document (``repro sweep``, schema ``sweep/v1``) holds one row per
(algorithm, topology, size, workload-tier) cell.  The paper's comparison reads
*across algorithms with everything else held fixed*, so these helpers group
rows by experimental condition and render one table per condition, algorithms
ranked by messages per entry — the measured counterpart of the paper's
Chapter 6 comparison, at sweep scale.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.analysis.report import format_table

ConditionKey = Tuple[str, int, str]


def sweep_conditions(document: Dict[str, Any]) -> List[ConditionKey]:
    """All (topology kind, n, workload tier) conditions present, sorted."""
    seen = {
        (row["kind"], row["n"], row["workload"])
        for row in document.get("scenarios", [])
    }
    return sorted(seen)


def condition_rows(
    document: Dict[str, Any], condition: ConditionKey
) -> List[Dict[str, Any]]:
    """Table rows for one condition: algorithms ranked by messages/entry.

    Failed scenarios (crashed / error / timeout) keep a row so a comparison
    table can never silently drop an algorithm.
    """
    rows: List[Dict[str, Any]] = []
    for scenario in document.get("scenarios", []):
        if (scenario["kind"], scenario["n"], scenario["workload"]) != condition:
            continue
        if scenario["status"] != "ok":
            rows.append(
                {
                    "algorithm": scenario["algorithm"],
                    "entries": "-",
                    "messages": "-",
                    "messages_per_entry": "-",
                    "mean_waiting_time": "-",
                    "status": scenario["status"].upper(),
                }
            )
            continue
        waiting = scenario.get("mean_waiting_time")
        rows.append(
            {
                "algorithm": scenario["algorithm"],
                "entries": scenario["entries"],
                "messages": scenario["messages"],
                "messages_per_entry": scenario["messages_per_entry"],
                "mean_waiting_time": round(waiting, 3) if waiting is not None else "-",
                "status": "ok",
            }
        )
    rows.sort(
        key=lambda row: (
            isinstance(row["messages_per_entry"], str),  # failures last
            row["messages_per_entry"]
            if not isinstance(row["messages_per_entry"], str)
            else 0.0,
            row["algorithm"],
        )
    )
    return rows


def format_sweep_tables(document: Dict[str, Any]) -> str:
    """One ranked comparison table per experimental condition."""
    sections: List[str] = []
    for condition in sweep_conditions(document):
        kind, n, workload = condition
        sections.append(
            format_table(
                condition_rows(document, condition),
                title=f"{kind} topology, N={n}, {workload} workload",
            )
        )
    failures = document.get("failures", [])
    if failures:
        sections.append(
            "FAILED scenarios: " + ", ".join(failures)
        )
    return "\n\n".join(sections)


def sweep_summary_row(document: Dict[str, Any]) -> Dict[str, Any]:
    """One-line health summary of a sweep document."""
    scenarios = document.get("scenarios", [])
    ok = [row for row in scenarios if row["status"] == "ok"]
    return {
        "scenarios": len(scenarios),
        "ok": len(ok),
        "failed": len(scenarios) - len(ok),
        "algorithms": len({row["algorithm"] for row in scenarios}),
        "conditions": len(sweep_conditions(document)),
    }
