"""Comparison tables over merged sweep results.

A sweep document (``repro sweep``, schema ``sweep/v1``) holds one row per
(algorithm, topology, size, workload-tier) cell.  The paper's comparison reads
*across algorithms with everything else held fixed*, so these helpers group
rows by experimental condition and render one table per condition, algorithms
ranked by messages per entry — the measured counterpart of the paper's
Chapter 6 comparison, at sweep scale.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.analysis.report import format_table

#: (topology kind, n, workload tier) for fault-free cells; fault-injected
#: cells append the fault profile name as a fourth element, so they group
#: into their own conditions without changing the fault-free key shape.
ConditionKey = Tuple[Any, ...]


def _row_condition(row: Dict[str, Any]) -> ConditionKey:
    base = (row["kind"], row["n"], row["workload"])
    profile = row.get("fault_profile")
    return base + (profile,) if profile else base


def sweep_conditions(document: Dict[str, Any]) -> List[ConditionKey]:
    """All experimental conditions present, sorted.

    Fault-injected cells form their own conditions (keyed by profile name),
    so a degradation table never mixes faulted and fault-free rows.
    """
    seen = {_row_condition(row) for row in document.get("scenarios", [])}
    return sorted(seen)


def condition_rows(
    document: Dict[str, Any], condition: ConditionKey
) -> List[Dict[str, Any]]:
    """Table rows for one condition: algorithms ranked by messages/entry.

    Failed scenarios (crashed / error / timeout) keep a row so a comparison
    table can never silently drop an algorithm.
    """
    condition = tuple(condition)
    faulted = len(condition) == 4
    rows: List[Dict[str, Any]] = []
    for scenario in document.get("scenarios", []):
        if _row_condition(scenario) != condition:
            continue
        if scenario["status"] != "ok":
            row = {
                "algorithm": scenario["algorithm"],
                "entries": "-",
                "messages": "-",
                "messages_per_entry": "-",
                "mean_waiting_time": "-",
                "status": scenario["status"].upper(),
            }
            if faulted:
                row["unserved"] = "-"
                row["total_faults"] = "-"
            rows.append(row)
            continue
        waiting = scenario.get("mean_waiting_time")
        row = {
            "algorithm": scenario["algorithm"],
            "entries": scenario["entries"],
            "messages": scenario["messages"],
            "messages_per_entry": scenario["messages_per_entry"],
            "mean_waiting_time": round(waiting, 3) if waiting is not None else "-",
            "status": "ok",
        }
        if faulted:
            # Degradation columns: how many nodes the injected faults starved
            # and how many messages were affected.
            faults = scenario.get("faults") or {}
            row["unserved"] = faults.get("unserved_nodes", "-")
            row["total_faults"] = faults.get("total_faults", "-")
            if faults.get("protocol_error"):
                row["status"] = "protocol-error"
        rows.append(row)
    rows.sort(
        key=lambda row: (
            isinstance(row["messages_per_entry"], str),  # failures last
            row["messages_per_entry"]
            if not isinstance(row["messages_per_entry"], str)
            else 0.0,
            row["algorithm"],
        )
    )
    return rows


def format_sweep_tables(document: Dict[str, Any]) -> str:
    """One ranked comparison table per experimental condition."""
    sections: List[str] = []
    for condition in sweep_conditions(document):
        kind, n, workload = condition[:3]
        title = f"{kind} topology, N={n}, {workload} workload"
        if len(condition) == 4:
            title += f", faults={condition[3]}"
        sections.append(
            format_table(condition_rows(document, condition), title=title)
        )
    failures = document.get("failures", [])
    if failures:
        sections.append(
            "FAILED scenarios: " + ", ".join(failures)
        )
    return "\n\n".join(sections)


def sweep_summary_row(document: Dict[str, Any]) -> Dict[str, Any]:
    """One-line health summary of a sweep document."""
    scenarios = document.get("scenarios", [])
    ok = [row for row in scenarios if row["status"] == "ok"]
    return {
        "scenarios": len(scenarios),
        "ok": len(ok),
        "failed": len(scenarios) - len(ok),
        "algorithms": len({row["algorithm"] for row in scenarios}),
        "conditions": len(sweep_conditions(document)),
    }
