"""Aggregate statistics over experiment results."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.workload.driver import ExperimentResult


@dataclass(frozen=True)
class RunSummary:
    """Aggregate statistics of one or more runs of the same configuration.

    Attributes:
        algorithm: the algorithm's registry name.
        runs: number of experiment results aggregated.
        total_entries: critical-section entries across all runs.
        mean_messages_per_entry: messages per entry, averaged over runs.
        min_messages_per_entry / max_messages_per_entry: extremes over runs.
        mean_sync_delay: mean of per-run mean synchronization delays (runs
            with no waiting entries are skipped).
        max_sync_delay: largest delay seen in any run.
        mean_waiting_time: mean of per-run mean waiting times.
    """

    algorithm: str
    runs: int
    total_entries: int
    mean_messages_per_entry: float
    min_messages_per_entry: float
    max_messages_per_entry: float
    mean_sync_delay: Optional[float]
    max_sync_delay: Optional[float]
    mean_waiting_time: float

    def as_row(self) -> Dict[str, object]:
        """Row for :func:`repro.analysis.report.format_table`."""
        return {
            "algorithm": self.algorithm,
            "runs": self.runs,
            "entries": self.total_entries,
            "msgs/entry (mean)": round(self.mean_messages_per_entry, 3),
            "msgs/entry (max)": round(self.max_messages_per_entry, 3),
            "sync delay (mean)": (
                round(self.mean_sync_delay, 3) if self.mean_sync_delay is not None else "-"
            ),
            "sync delay (max)": (
                round(self.max_sync_delay, 3) if self.max_sync_delay is not None else "-"
            ),
            "waiting time (mean)": round(self.mean_waiting_time, 3),
        }


def summarize_results(results: Sequence[ExperimentResult]) -> RunSummary:
    """Aggregate several results of the *same* algorithm into one summary.

    Raises:
        ValueError: if the results are empty or mix different algorithms.
    """
    if not results:
        raise ValueError("cannot summarise an empty result list")
    algorithms = {result.algorithm for result in results}
    if len(algorithms) != 1:
        raise ValueError(f"results mix algorithms: {sorted(algorithms)}")

    per_entry = [result.messages_per_entry for result in results]
    sync_means = [
        result.mean_sync_delay for result in results if result.mean_sync_delay is not None
    ]
    sync_maxes = [
        result.max_sync_delay for result in results if result.max_sync_delay is not None
    ]
    waits = [result.mean_waiting_time for result in results]
    return RunSummary(
        algorithm=results[0].algorithm,
        runs=len(results),
        total_entries=sum(result.completed_entries for result in results),
        mean_messages_per_entry=_mean(per_entry),
        min_messages_per_entry=min(per_entry),
        max_messages_per_entry=max(per_entry),
        mean_sync_delay=_mean(sync_means) if sync_means else None,
        max_sync_delay=max(sync_maxes) if sync_maxes else None,
        mean_waiting_time=_mean(waits),
    )


def summarize_by_algorithm(
    results: Sequence[ExperimentResult],
) -> Dict[str, RunSummary]:
    """Group results by algorithm and summarise each group."""
    grouped: Dict[str, List[ExperimentResult]] = {}
    for result in results:
        grouped.setdefault(result.algorithm, []).append(result)
    return {name: summarize_results(group) for name, group in grouped.items()}


def confidence_interval(values: Sequence[float], *, z: float = 1.96) -> tuple:
    """Normal-approximation confidence interval ``(mean, half_width)``.

    With fewer than two samples the half-width is 0.0.
    """
    if not values:
        raise ValueError("cannot compute a confidence interval of no samples")
    mean = _mean(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((value - mean) ** 2 for value in values) / (len(values) - 1)
    half_width = z * math.sqrt(variance / len(values))
    return mean, half_width


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)
