"""Closed-form performance figures quoted in Chapter 6.

Every number the paper states analytically is reproduced here as a function of
``N`` (system size) and, where relevant, ``D`` (diameter of the logical
structure), so the benchmark harness can print *paper value* next to
*measured value* for each experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class AlgorithmBounds:
    """The paper's quoted figures for one algorithm.

    Attributes:
        name: registry name of the algorithm.
        upper_bound: worst-case messages per critical-section entry.
        lower_bound: best-case messages per critical-section entry.
        sync_delay: worst-case synchronization delay in messages, if the paper
            quotes one for this algorithm (Section 6.3 lists only the
            token-based algorithms and the centralized scheme).
        formula: human-readable formula, for tables.
    """

    name: str
    upper_bound: float
    lower_bound: float
    sync_delay: Optional[float]
    formula: str


def upper_bound_messages(algorithm: str, *, n: int, diameter: int) -> float:
    """Worst-case messages per entry for ``algorithm`` (Section 6.1 list).

    Args:
        algorithm: registry name.
        n: number of nodes.
        diameter: diameter of the logical structure (used by the tree/DAG
            algorithms; ignored by the broadcast ones).
    """
    return _bounds(algorithm, n=n, diameter=diameter).upper_bound


def upper_bound_table(*, n: int, diameter: int) -> List[AlgorithmBounds]:
    """The full Section 6.1 comparison list for a system of ``n`` nodes."""
    names = [
        "lamport",
        "ricart-agrawala",
        "carvalho-roucairol",
        "suzuki-kasami",
        "singhal",
        "maekawa",
        "raymond",
        "centralized",
        "dag",
    ]
    return [_bounds(name, n=n, diameter=diameter) for name in names]


def _bounds(algorithm: str, *, n: int, diameter: int) -> AlgorithmBounds:
    if algorithm == "lamport":
        return AlgorithmBounds(
            "lamport", 3 * (n - 1), 3 * (n - 1), None, "3 * (N - 1)"
        )
    if algorithm == "ricart-agrawala":
        return AlgorithmBounds(
            "ricart-agrawala", 2 * (n - 1), 2 * (n - 1), None, "2 * (N - 1)"
        )
    if algorithm == "carvalho-roucairol":
        return AlgorithmBounds(
            "carvalho-roucairol", 2 * (n - 1), 0, None, "0 .. 2 * (N - 1)"
        )
    if algorithm == "suzuki-kasami":
        return AlgorithmBounds("suzuki-kasami", n, 0, 1, "0 or N")
    if algorithm == "singhal":
        return AlgorithmBounds("singhal", n, 0, 1, "0 .. N")
    if algorithm == "maekawa":
        root = math.sqrt(n)
        return AlgorithmBounds("maekawa", 7 * root, 3 * root, None, "3*sqrt(N) .. 7*sqrt(N)")
    if algorithm == "raymond":
        return AlgorithmBounds("raymond", 2 * diameter, 0, diameter, "0 .. 2 * D")
    if algorithm == "centralized":
        return AlgorithmBounds("centralized", 3, 0, 2, "3 (REQUEST, GRANT, RELEASE)")
    if algorithm == "dag":
        return AlgorithmBounds("dag", diameter + 1, 0, 1, "0 .. D + 1")
    raise KeyError(f"no paper bound recorded for algorithm {algorithm!r}")


def average_messages_dag_star(n: int) -> float:
    """Section 6.2: average messages per entry for the DAG algorithm on a star.

    The paper derives ``3 - 5/N + 2/N**2`` assuming every node is equally
    likely to hold the token and the requester is uniform as well.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    return 3.0 - 5.0 / n + 2.0 / (n * n)


def average_messages_dag_star_leaf_holder(n: int) -> float:
    """Section 6.2 intermediate figure: token held by a leaf, ``3 - 4/N``."""
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    return 3.0 - 4.0 / n


def average_messages_dag_star_center_holder(n: int) -> float:
    """Section 6.2 intermediate figure: token held by the centre, ``2 - 2/N``."""
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    return 2.0 - 2.0 / n


def average_messages_centralized_star(n: int) -> float:
    """Section 6.2: average messages per entry for the centralized scheme.

    ``3 - 3/N``: every non-coordinator entry costs three messages and the
    coordinator's own entries cost none.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    return 3.0 - 3.0 / n


def sync_delay_bounds() -> Dict[str, float]:
    """Section 6.3: synchronization delay (in sequential messages).

    The paper lists the token-based algorithms and the centralized scheme; the
    Raymond entry is in units of the diameter ``D`` and is returned by
    :func:`raymond_sync_delay` instead.
    """
    return {
        "dag": 1.0,
        "suzuki-kasami": 1.0,
        "singhal": 1.0,
        "centralized": 2.0,
    }


def raymond_sync_delay(diameter: int) -> float:
    """Section 6.3: Raymond's synchronization delay is up to ``D`` messages."""
    return float(diameter)


def storage_overhead_table(n: int) -> Dict[str, Dict[str, object]]:
    """Section 6.4: per-node state and token/message payload comparison.

    Values are expressed in integer-sized fields; ``n`` only matters for the
    algorithms whose structures grow with the system size.
    """
    return {
        "dag": {
            "per_node_fields": 3,
            "scales_with_n": False,
            "token_payload": 0,
            "request_payload": 2,
            "description": "HOLDING, NEXT, FOLLOW; token empty",
        },
        "raymond": {
            "per_node_fields": 3 + n,  # HOLDER, USING, ASKED + queue up to degree+1
            "scales_with_n": True,
            "token_payload": 0,
            "request_payload": 1,
            "description": "HOLDER, USING, ASKED plus a FIFO request queue",
        },
        "suzuki-kasami": {
            "per_node_fields": n,
            "scales_with_n": True,
            "token_payload": 2 * n,
            "request_payload": 2,
            "description": "RN array; token carries LN array and queue",
        },
        "singhal": {
            "per_node_fields": 2 * n,
            "scales_with_n": True,
            "token_payload": 2 * n,
            "request_payload": 2,
            "description": "SV and SN vectors; token carries TSV and TSN",
        },
        "lamport": {
            "per_node_fields": 2 * n,
            "scales_with_n": True,
            "token_payload": 0,
            "request_payload": 2,
            "description": "request queue and last-heard timestamps",
        },
        "ricart-agrawala": {
            "per_node_fields": 2 * n,
            "scales_with_n": True,
            "token_payload": 0,
            "request_payload": 2,
            "description": "pending-reply and deferred sets",
        },
        "carvalho-roucairol": {
            "per_node_fields": 3 * n,
            "scales_with_n": True,
            "token_payload": 0,
            "request_payload": 2,
            "description": "pending, deferred, and cached-permission sets",
        },
        "maekawa": {
            "per_node_fields": 4 * int(math.ceil(math.sqrt(n))),
            "scales_with_n": True,
            "token_payload": 0,
            "request_payload": 2,
            "description": "committee ids, vote bookkeeping, waiting queue",
        },
        "centralized": {
            "per_node_fields": n,
            "scales_with_n": True,
            "token_payload": 0,
            "request_payload": 1,
            "description": "coordinator keeps a queue of pending requests",
        },
    }
