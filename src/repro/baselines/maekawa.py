"""Maekawa's quorum (√N) algorithm with Sanders' deadlock fix (Section 2.6).

A node only needs permission from its *committee* (quorum); any two committees
intersect, so two nodes can never both collect full permission.  The best case
costs about ``3 * sqrt(N)`` messages (REQUEST, LOCKED, RELEASE to each
committee member), the worst case about ``7 * sqrt(N)`` once the
INQUIRE / RELINQUISH / FAIL deadlock-avoidance traffic is counted — exactly the
range the paper quotes after Sanders' correction.

Quorum construction
-------------------
The paper notes that optimal committees correspond to finite projective
planes, which only exist for particular ``N``.  Following common practice this
implementation uses **grid quorums**: nodes are laid out in a near-square
grid and a node's committee is its row plus its column.  Grid quorums have the
required pairwise-intersection property for every ``N`` and are Θ(√N) in
size, so the message-count scaling the paper reports is preserved; this is the
only place the reproduction substitutes a construction (documented in
DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.base import MutexNodeBase, MutexSystem, registry
from repro.exceptions import ProtocolError

Timestamp = Tuple[int, int]


def build_grid_quorums(node_ids: Sequence[int]) -> Dict[int, Tuple[int, ...]]:
    """Grid quorums: each node's committee is its grid row plus its column.

    The nodes are laid out row-major in a ``rows x cols`` grid with
    ``cols = ceil(sqrt(N))``.  Every pair of committees intersects (the row of
    one crosses the column of the other), and every committee contains its own
    node, as Maekawa requires.
    """
    ordered = list(node_ids)
    count = len(ordered)
    if count == 0:
        raise ProtocolError("cannot build quorums for an empty node set")
    cols = math.ceil(math.sqrt(count))
    rows = math.ceil(count / cols)

    def position(index: int) -> Tuple[int, int]:
        return index // cols, index % cols

    quorums: Dict[int, Tuple[int, ...]] = {}
    for index, node in enumerate(ordered):
        row, col = position(index)
        members: Set[int] = set()
        for other_index, other in enumerate(ordered):
            other_row, other_col = position(other_index)
            if other_row == row or other_col == col:
                members.add(other)
        members.add(node)
        quorums[node] = tuple(sorted(members))
    return quorums


@dataclass(frozen=True)
class MaekawaRequest:
    """Request sent to every committee member."""

    clock: int
    origin: int

    type_name = "REQUEST"

    def payload_size(self) -> int:
        return 2

    def describe(self) -> str:
        return f"REQUEST(c={self.clock}, from={self.origin})"


@dataclass(frozen=True)
class MaekawaLocked:
    """A committee member's vote: it is now locked for the requester."""

    origin: int

    type_name = "LOCKED"

    def payload_size(self) -> int:
        return 1

    def describe(self) -> str:
        return f"LOCKED(from={self.origin})"


@dataclass(frozen=True)
class MaekawaRelease:
    """The requester is done; the member may vote for someone else."""

    origin: int

    type_name = "RELEASE"

    def payload_size(self) -> int:
        return 1

    def describe(self) -> str:
        return f"RELEASE(from={self.origin})"


@dataclass(frozen=True)
class MaekawaInquire:
    """Member asks its current lock holder to consider giving the vote back."""

    origin: int

    type_name = "INQUIRE"

    def payload_size(self) -> int:
        return 1

    def describe(self) -> str:
        return f"INQUIRE(from={self.origin})"


@dataclass(frozen=True)
class MaekawaRelinquish:
    """Requester returns a member's vote so a higher-priority request can win."""

    origin: int

    type_name = "RELINQUISH"

    def payload_size(self) -> int:
        return 1

    def describe(self) -> str:
        return f"RELINQUISH(from={self.origin})"


@dataclass(frozen=True)
class MaekawaFail:
    """Member tells a requester that a higher-priority request holds its vote."""

    origin: int

    type_name = "FAIL"

    def payload_size(self) -> int:
        return 1

    def describe(self) -> str:
        return f"FAIL(from={self.origin})"


class MaekawaNode(MutexNodeBase):
    """One participant, acting both as requester and as committee member."""

    _MESSAGE_HANDLERS = {
        MaekawaRequest: "_on_request",
        MaekawaLocked: "_on_locked",
        MaekawaRelease: "_on_release",
        MaekawaInquire: "_on_inquire",
        MaekawaRelinquish: "_on_relinquish",
        MaekawaFail: "_on_fail",
    }

    def __init__(self, node_id: int, network, *, quorum: Sequence[int], **kwargs) -> None:
        super().__init__(node_id, network, **kwargs)
        self.quorum = tuple(quorum)
        self.clock = 0
        # --- requester-side state -------------------------------------- #
        self.my_request: Optional[Timestamp] = None
        self.votes: Set[int] = set()
        self.failed_from: Set[int] = set()
        self.inquiries_pending: Set[int] = set()
        # --- member-side state ------------------------------------------ #
        # The request currently holding our vote, and the queue of waiting
        # requests, both as (timestamp, origin) with timestamp = (clock, id).
        self.locked_for: Optional[Tuple[Timestamp, int]] = None
        self.waiting: List[Tuple[Timestamp, int]] = []
        self.inquired = False
        self.failed_sent: Set[int] = set()

    # ------------------------------------------------------------------ #
    # requester side
    # ------------------------------------------------------------------ #
    def request_cs(self) -> None:
        self._note_request()
        self.clock += 1
        self.my_request = (self.clock, self.node_id)
        self.votes = set()
        self.failed_from = set()
        self.inquiries_pending = set()
        # Build the message once: handling our own copy through the loopback
        # advances our clock, and later committee members must still see the
        # timestamp the request was issued with.
        request = MaekawaRequest(clock=self.my_request[0], origin=self.node_id)
        for member in self.quorum:
            self._send_or_loopback(member, request)

    def release_cs(self) -> None:
        self._note_exit()
        self.my_request = None
        self.votes = set()
        self.failed_from = set()
        self.inquiries_pending = set()
        for member in self.quorum:
            self._send_or_loopback(member, MaekawaRelease(origin=self.node_id))

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def _on_request(self, sender: int, message: MaekawaRequest) -> None:
        self.clock = max(self.clock, message.clock) + 1
        self._member_handle_request((message.clock, message.origin))

    def _on_locked(self, sender: int, message: MaekawaLocked) -> None:
        self._requester_handle_locked(message.origin)

    def _on_release(self, sender: int, message: MaekawaRelease) -> None:
        self._member_handle_release(message.origin)

    def _on_inquire(self, sender: int, message: MaekawaInquire) -> None:
        self._requester_handle_inquire(message.origin)

    def _on_relinquish(self, sender: int, message: MaekawaRelinquish) -> None:
        self._member_handle_relinquish(message.origin)

    def _on_fail(self, sender: int, message: MaekawaFail) -> None:
        self._requester_handle_fail(message.origin)

    # ------------------------------------------------------------------ #
    # member-side behaviour
    # ------------------------------------------------------------------ #
    def _member_handle_request(self, request: Timestamp) -> None:
        timestamp, origin = request, request[1]
        if self.locked_for is None:
            self.locked_for = (timestamp, origin)
            self.inquired = False
            self.failed_sent.discard(origin)
            self._send_or_loopback(origin, MaekawaLocked(origin=self.node_id))
            return
        locked_timestamp, locked_origin = self.locked_for
        self.waiting.append((timestamp, origin))
        self.waiting.sort()
        if timestamp < locked_timestamp:
            # Newcomer has priority over the current lock: ask the holder to
            # consider relinquishing (one INQUIRE per lock).
            if not self.inquired:
                self.inquired = True
                self._send_or_loopback(locked_origin, MaekawaInquire(origin=self.node_id))
        else:
            # Sanders' fix: tell the lower-priority newcomer it cannot win yet,
            # so it can answer INQUIREs at the members it did manage to lock.
            if origin not in self.failed_sent:
                self.failed_sent.add(origin)
                self._send_or_loopback(origin, MaekawaFail(origin=self.node_id))

    def _member_handle_release(self, origin: int) -> None:
        if self.locked_for is None or self.locked_for[1] != origin:
            raise ProtocolError(
                f"member {self.node_id} received RELEASE from {origin} but is locked "
                f"for {self.locked_for}"
            )
        self._grant_next()

    def _member_handle_relinquish(self, origin: int) -> None:
        if self.locked_for is None or self.locked_for[1] != origin:
            # A stale relinquish (the lock already moved on) can be ignored.
            return
        # Put the relinquished request back in the queue and re-grant.
        self.waiting.append(self.locked_for)
        self.waiting.sort()
        self._grant_next()

    def _grant_next(self) -> None:
        self.locked_for = None
        self.inquired = False
        if not self.waiting:
            return
        timestamp, origin = self.waiting.pop(0)
        self.locked_for = (timestamp, origin)
        # A FAIL previously sent for this request is superseded by the vote.
        self.failed_sent.discard(origin)
        self._send_or_loopback(origin, MaekawaLocked(origin=self.node_id))
        # Sanders' fix: every request still waiting behind the new lock gets a
        # FAIL so its originator knows it must answer INQUIREs.  "If one has
        # not already been sent" is per request, so failed_sent persists
        # across grants and each waiting request receives at most one FAIL.
        for waiting_timestamp, waiting_origin in self.waiting:
            if waiting_origin not in self.failed_sent:
                self.failed_sent.add(waiting_origin)
                self._send_or_loopback(waiting_origin, MaekawaFail(origin=self.node_id))

    # ------------------------------------------------------------------ #
    # requester-side behaviour
    # ------------------------------------------------------------------ #
    def _requester_handle_locked(self, member: int) -> None:
        if self.my_request is None:
            # The vote arrived after we released (possible when a relinquished
            # vote is re-granted); the RELEASE we broadcast will clean it up.
            return
        self.votes.add(member)
        self.failed_from.discard(member)
        if self.requesting and set(self.quorum) <= self.votes:
            self.inquiries_pending = set()
            self._enter_critical_section()

    def _requester_handle_fail(self, member: int) -> None:
        self.failed_from.add(member)
        # Any INQUIRE we postponed can now be answered: we know we cannot win
        # until the competing request finishes, so give the votes back.
        if self.my_request is not None and not self.in_critical_section:
            for inquiring in sorted(self.inquiries_pending):
                self._relinquish(inquiring)
            self.inquiries_pending = set()

    def _requester_handle_inquire(self, member: int) -> None:
        if self.my_request is None or self.in_critical_section:
            # Too late: we are already executing (or done); the member's vote
            # will be freed by our RELEASE.
            return
        if self.failed_from:
            self._relinquish(member)
        else:
            # We might still win: postpone the answer until we either enter the
            # critical section or receive a FAIL.
            self.inquiries_pending.add(member)

    def _relinquish(self, member: int) -> None:
        if member in self.votes:
            self.votes.discard(member)
        self._send_or_loopback(member, MaekawaRelinquish(origin=self.node_id))

    # ------------------------------------------------------------------ #
    # local delivery for the node's own committee membership
    # ------------------------------------------------------------------ #
    def _send_or_loopback(self, destination: int, message: Any) -> None:
        """Send a message, handling our own committee membership locally.

        The paper says a requester "pretends to have received the REQUEST
        message itself"; delivering loopback messages synchronously keeps that
        behaviour without putting self-addressed traffic on the network (and
        without counting it as a message, matching how the paper counts).
        """
        if destination == self.node_id:
            self.on_message(self.node_id, message)
        else:
            self.send(destination, message)


@registry.register
class MaekawaSystem(MutexSystem):
    """Maekawa's algorithm with grid quorums and Sanders' deadlock fix."""

    algorithm_name = "maekawa"
    uses_topology_edges = False
    dense_message_traffic = True
    #: Quorum traffic is O(sqrt(N)) but grid-quorum construction and the
    #: vote bookkeeping stop being informative past the small tiers.
    max_recommended_nodes = 1_000
    storage_class = "quorum"
    token_based = False
    storage_description = (
        "per node: committee membership (about sqrt(N) ids), current vote, "
        "priority queue of waiting requests, vote/fail bookkeeping sets"
    )

    def _create_nodes(self) -> Dict[int, MaekawaNode]:
        quorums = build_grid_quorums(self.topology.nodes)
        return {
            node_id: MaekawaNode(
                node_id,
                self.network,
                quorum=quorums[node_id],
                metrics=self.metrics,
                trace=self.trace if self.trace.enabled else None,
                on_enter=self._on_enter,
            )
            for node_id in self.topology.nodes
        }

    @property
    def quorums(self) -> Dict[int, Tuple[int, ...]]:
        """The committee of every node (useful for tests and examples)."""
        return {node_id: node.quorum for node_id, node in self.nodes.items()}
