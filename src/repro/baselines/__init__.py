"""Baseline mutual exclusion algorithms (the paper's Chapter 2) plus adapters.

Every algorithm the paper compares against is implemented here on the same
simulation substrate and behind the same :class:`~repro.baselines.base
.MutexSystem` interface, so an identical workload can be replayed against each
one and the resulting message counts and delays are directly comparable:

======================  ============================================  ==========================
Registry name           Algorithm                                     Paper's message bound
======================  ============================================  ==========================
``centralized``         central coordinator                           3 per entry
``lamport``             Lamport's queue + acknowledgement scheme      3 (N - 1)
``ricart-agrawala``     deferred-REPLY scheme                         2 (N - 1)
``carvalho-roucairol``  Ricart–Agrawala with cached permissions       0 .. 2 (N - 1)
``suzuki-kasami``       broadcast token                               0 or N
``singhal``             heuristically-aided token                     up to N
``maekawa``             quorum (grid quorums, Sanders' fix)           3·√N .. 7·√N
``raymond``             tree token                                    up to 2·D
``dag``                 the paper's DAG algorithm (adapter)           up to D + 1
======================  ============================================  ==========================

Importing this package populates :data:`repro.baselines.base.registry`.
"""

from repro.baselines.base import (
    STORAGE_CLASSES,
    AlgorithmCapabilities,
    AlgorithmRegistry,
    MutexNodeBase,
    MutexSystem,
    registry,
)
from repro.baselines.centralized import CentralizedSystem
from repro.baselines.lamport import LamportSystem
from repro.baselines.ricart_agrawala import RicartAgrawalaSystem
from repro.baselines.carvalho_roucairol import CarvalhoRoucairolSystem
from repro.baselines.suzuki_kasami import SuzukiKasamiSystem
from repro.baselines.singhal import SinghalSystem
from repro.baselines.maekawa import MaekawaSystem, build_grid_quorums
from repro.baselines.raymond import RaymondSystem
from repro.baselines.dag_adapter import DagSystem

__all__ = [
    "STORAGE_CLASSES",
    "AlgorithmCapabilities",
    "AlgorithmRegistry",
    "MutexNodeBase",
    "MutexSystem",
    "registry",
    "CentralizedSystem",
    "LamportSystem",
    "RicartAgrawalaSystem",
    "CarvalhoRoucairolSystem",
    "SuzukiKasamiSystem",
    "SinghalSystem",
    "MaekawaSystem",
    "build_grid_quorums",
    "RaymondSystem",
    "DagSystem",
]
