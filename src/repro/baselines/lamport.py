"""Lamport's distributed mutual exclusion algorithm (Section 2.1).

Every node keeps a logical clock and a copy of the request queue.  A request
is broadcast to all other nodes, which acknowledge it; the requester enters
its critical section when its own request is the earliest in its queue *and*
it has heard something later from every other node.  Releases are broadcast
too, giving the paper's quoted upper bound of ``3 * (N - 1)`` messages per
critical-section entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.baselines.base import MutexNodeBase, MutexSystem, registry

Timestamp = Tuple[int, int]  # (logical clock value, node id) — totally ordered


@dataclass(frozen=True)
class LamportRequest:
    """Broadcast request carrying the requester's clock value."""

    clock: int
    origin: int

    type_name = "REQUEST"

    def payload_size(self) -> int:
        return 2

    def describe(self) -> str:
        return f"REQUEST(c={self.clock}, from={self.origin})"


@dataclass(frozen=True)
class LamportAck:
    """Acknowledgement of a request (the paper's ACKNOWLEDGE message)."""

    clock: int
    origin: int

    type_name = "ACKNOWLEDGE"

    def payload_size(self) -> int:
        return 2

    def describe(self) -> str:
        return f"ACK(c={self.clock}, from={self.origin})"


@dataclass(frozen=True)
class LamportRelease:
    """Broadcast release removing the sender's request from every queue."""

    clock: int
    origin: int

    type_name = "RELEASE"

    def payload_size(self) -> int:
        return 2

    def describe(self) -> str:
        return f"RELEASE(c={self.clock}, from={self.origin})"


class LamportNode(MutexNodeBase):
    """One participant of Lamport's algorithm."""

    _MESSAGE_HANDLERS = {
        LamportRequest: "_on_request",
        LamportAck: "_on_ack",
        LamportRelease: "_on_release",
    }

    def __init__(self, node_id: int, network, *, all_nodes, **kwargs) -> None:
        super().__init__(node_id, network, **kwargs)
        self.all_nodes = tuple(all_nodes)
        self.others = tuple(n for n in self.all_nodes if n != node_id)
        self.clock = 0
        # The distributed queue: latest outstanding request per node.
        self.queue: Dict[int, Timestamp] = {}
        # Timestamp of the most recent message received from each other node.
        self.last_heard: Dict[int, Timestamp] = {}
        self.my_request: Optional[Timestamp] = None

    # ------------------------------------------------------------------ #
    # requests and releases
    # ------------------------------------------------------------------ #
    def request_cs(self) -> None:
        self._note_request()
        self.clock += 1
        self.my_request = (self.clock, self.node_id)
        self.queue[self.node_id] = self.my_request
        for other in self.others:
            self.send(other, LamportRequest(clock=self.my_request[0], origin=self.node_id))
        self._try_enter()

    def release_cs(self) -> None:
        self._note_exit()
        self.queue.pop(self.node_id, None)
        self.my_request = None
        self.clock += 1
        for other in self.others:
            self.send(other, LamportRelease(clock=self.clock, origin=self.node_id))

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def _on_request(self, sender: int, message: LamportRequest) -> None:
        self._advance_clock(message.clock)
        self.queue[message.origin] = (message.clock, message.origin)
        self._heard(message.origin, message.clock)
        self.clock += 1
        self.send(message.origin, LamportAck(clock=self.clock, origin=self.node_id))
        self._try_enter()

    def _on_ack(self, sender: int, message: LamportAck) -> None:
        self._advance_clock(message.clock)
        self._heard(message.origin, message.clock)
        self._try_enter()

    def _on_release(self, sender: int, message: LamportRelease) -> None:
        self._advance_clock(message.clock)
        self.queue.pop(message.origin, None)
        self._heard(message.origin, message.clock)
        self._try_enter()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _advance_clock(self, received_clock: int) -> None:
        self.clock = max(self.clock, received_clock) + 1

    def _heard(self, origin: int, clock: int) -> None:
        stamp = (clock, origin)
        if origin not in self.last_heard or self.last_heard[origin] < stamp:
            self.last_heard[origin] = stamp

    def _try_enter(self) -> None:
        if not self.requesting or self.in_critical_section or self.my_request is None:
            return
        # Condition 1: our request is the earliest in our copy of the queue.
        if min(self.queue.values()) != self.my_request:
            return
        # Condition 2: we have heard something later than our request from
        # every other node (so no earlier request can still be in flight).
        for other in self.others:
            heard = self.last_heard.get(other)
            if heard is None or heard < self.my_request:
                return
        self._enter_critical_section()


@registry.register
class LamportSystem(MutexSystem):
    """Lamport's algorithm on a fully connected logical network."""

    algorithm_name = "lamport"
    uses_topology_edges = False
    dense_message_traffic = True
    #: 3(N-1) messages per entry: past ~1k nodes a cell measures broadcast
    #: cost, not the algorithm, so the matrices stop admitting it there.
    max_recommended_nodes = 1_000
    storage_class = "linear"
    token_based = False
    storage_description = (
        "per node: logical clock, request queue with one entry per node, "
        "last-heard timestamp per node"
    )

    def _create_nodes(self) -> Dict[int, LamportNode]:
        return {
            node_id: LamportNode(
                node_id,
                self.network,
                all_nodes=self.topology.nodes,
                metrics=self.metrics,
                trace=self.trace if self.trace.enabled else None,
                on_enter=self._on_enter,
            )
            for node_id in self.topology.nodes
        }
