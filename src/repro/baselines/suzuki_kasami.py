"""Suzuki and Kasami's broadcast token algorithm (Section 2.4).

A single explicit token circulates.  A node without the token broadcasts a
sequence-numbered REQUEST to everyone; the token records, per node, the
sequence number of the last request it satisfied, so the holder can tell which
received requests are still outstanding.  Either 0 messages (already holding
the token) or exactly ``N`` messages (``N - 1`` requests plus one PRIVILEGE)
are needed per entry — the paper's quoted bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import MutexNodeBase, MutexSystem, registry
from repro.exceptions import ProtocolError


@dataclass(frozen=True)
class SKRequest:
    """Broadcast token request: ``REQUEST(origin, sequence)``."""

    origin: int
    sequence: int

    type_name = "REQUEST"

    def payload_size(self) -> int:
        return 2

    def describe(self) -> str:
        return f"REQUEST(from={self.origin}, seq={self.sequence})"


@dataclass(frozen=True)
class SKPrivilege:
    """The token: last-granted sequence numbers plus the token's queue.

    Unlike the DAG algorithm's PRIVILEGE message, this token carries state
    whose size grows with ``N`` — exactly the storage-overhead difference
    Section 6.4 highlights.
    """

    last_granted: Tuple[Tuple[int, int], ...]
    queue: Tuple[int, ...]

    type_name = "PRIVILEGE"

    def payload_size(self) -> int:
        return 2 * len(self.last_granted) + len(self.queue)

    def describe(self) -> str:
        return f"PRIVILEGE(queue={list(self.queue)})"


class SuzukiKasamiNode(MutexNodeBase):
    """One participant of the Suzuki–Kasami algorithm."""

    _MESSAGE_HANDLERS = {SKRequest: "_on_request", SKPrivilege: "_on_privilege"}

    def __init__(
        self,
        node_id: int,
        network,
        *,
        all_nodes,
        holds_token: bool,
        **kwargs,
    ) -> None:
        super().__init__(node_id, network, **kwargs)
        self.all_nodes = tuple(all_nodes)
        self.others = tuple(n for n in self.all_nodes if n != node_id)
        # Highest request sequence number known per node (the RN array).
        self.request_numbers: Dict[int, int] = {n: 0 for n in self.all_nodes}
        self.has_token = holds_token
        # Token state, meaningful only while has_token is True (the LN array
        # and the token queue).
        self.token_last_granted: Dict[int, int] = (
            {n: 0 for n in self.all_nodes} if holds_token else {}
        )
        self.token_queue: List[int] = []

    # ------------------------------------------------------------------ #
    # requests and releases
    # ------------------------------------------------------------------ #
    def request_cs(self) -> None:
        self._note_request()
        if self.has_token:
            self._enter_critical_section()
            return
        self.request_numbers[self.node_id] += 1
        sequence = self.request_numbers[self.node_id]
        for other in self.others:
            self.send(other, SKRequest(origin=self.node_id, sequence=sequence))

    def release_cs(self) -> None:
        self._note_exit()
        # Record that our latest request has been satisfied.
        self.token_last_granted[self.node_id] = self.request_numbers[self.node_id]
        # Add every node with an outstanding request to the token queue.
        for other in self.all_nodes:
            if other == self.node_id or other in self.token_queue:
                continue
            if self.request_numbers[other] == self.token_last_granted.get(other, 0) + 1:
                self.token_queue.append(other)
        if self.token_queue:
            self._pass_token(self.token_queue.pop(0))

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def _on_request(self, sender: int, message: SKRequest) -> None:
        current = self.request_numbers[message.origin]
        self.request_numbers[message.origin] = max(current, message.sequence)
        # An idle token holder hands the token over immediately if the request
        # is outstanding (not yet granted according to the token).
        if (
            self.has_token
            and not self.in_critical_section
            and not self.requesting
            and self.request_numbers[message.origin]
            == self.token_last_granted[message.origin] + 1
        ):
            self._pass_token(message.origin)

    def _on_privilege(self, sender: int, message: SKPrivilege) -> None:
        if self.has_token:
            raise ProtocolError(f"node {self.node_id} received a duplicate token")
        self.has_token = True
        self.token_last_granted = dict(message.last_granted)
        self.token_queue = list(message.queue)
        if self.requesting:
            self._enter_critical_section()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _pass_token(self, destination: int) -> None:
        self.has_token = False
        token = SKPrivilege(
            last_granted=tuple(sorted(self.token_last_granted.items())),
            queue=tuple(self.token_queue),
        )
        self.token_last_granted = {}
        self.token_queue = []
        self.send(destination, token)


@registry.register
class SuzukiKasamiSystem(MutexSystem):
    """Suzuki–Kasami's broadcast token algorithm."""

    algorithm_name = "suzuki-kasami"
    uses_topology_edges = False
    dense_message_traffic = True
    #: The request broadcast costs N messages per entry, and the per-node
    #: request-number array is Theta(N) memory.
    max_recommended_nodes = 1_000
    storage_class = "linear"
    token_based = True
    storage_description = (
        "per node: request-number array of size N; token: last-granted array of "
        "size N plus a queue of waiting nodes"
    )

    def _create_nodes(self) -> Dict[int, SuzukiKasamiNode]:
        holder = self.topology.token_holder
        return {
            node_id: SuzukiKasamiNode(
                node_id,
                self.network,
                all_nodes=self.topology.nodes,
                holds_token=(node_id == holder),
                metrics=self.metrics,
                trace=self.trace if self.trace.enabled else None,
                on_enter=self._on_enter,
            )
            for node_id in self.topology.nodes
        }
