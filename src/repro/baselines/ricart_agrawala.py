"""Ricart and Agrawala's algorithm (Section 2.2).

The ACKNOWLEDGE and RELEASE messages of Lamport's algorithm are folded into a
single REPLY: a node replies to a request immediately unless it is inside its
critical section or is itself requesting with higher priority, in which case
the reply is deferred until it leaves the critical section.  A requester
enters once it has collected replies from everyone else, giving the paper's
``2 * (N - 1)`` messages per entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.baselines.base import MutexNodeBase, MutexSystem, registry
from repro.exceptions import ProtocolError

Timestamp = Tuple[int, int]


@dataclass(frozen=True)
class RARequest:
    """Broadcast request with the requester's clock value."""

    clock: int
    origin: int

    type_name = "REQUEST"

    def payload_size(self) -> int:
        return 2

    def describe(self) -> str:
        return f"REQUEST(c={self.clock}, from={self.origin})"


@dataclass(frozen=True)
class RAReply:
    """Permission from one node (combines Lamport's ACK and RELEASE)."""

    origin: int

    type_name = "REPLY"

    def payload_size(self) -> int:
        return 1

    def describe(self) -> str:
        return f"REPLY(from={self.origin})"


class RicartAgrawalaNode(MutexNodeBase):
    """One participant of the Ricart–Agrawala algorithm."""

    _MESSAGE_HANDLERS = {RARequest: "_on_request", RAReply: "_on_reply"}

    def __init__(self, node_id: int, network, *, all_nodes, **kwargs) -> None:
        super().__init__(node_id, network, **kwargs)
        self.all_nodes = tuple(all_nodes)
        self.others = tuple(n for n in self.all_nodes if n != node_id)
        self.clock = 0
        self.my_request: Optional[Timestamp] = None
        self.awaiting_reply: Set[int] = set()
        self.deferred: Set[int] = set()

    def request_cs(self) -> None:
        self._note_request()
        self.clock += 1
        self.my_request = (self.clock, self.node_id)
        self.awaiting_reply = set(self.others)
        for other in self.others:
            self.send(other, RARequest(clock=self.my_request[0], origin=self.node_id))
        if not self.awaiting_reply:
            # Single-node system: nothing to wait for.
            self._enter_critical_section()

    def release_cs(self) -> None:
        self._note_exit()
        self.my_request = None
        deferred, self.deferred = self.deferred, set()
        for other in sorted(deferred):
            self.send(other, RAReply(origin=self.node_id))

    def _on_request(self, sender: int, message: RARequest) -> None:
        self.clock = max(self.clock, message.clock) + 1
        their_request = (message.clock, message.origin)
        defer = False
        if self.in_critical_section:
            defer = True
        elif self.my_request is not None and self.my_request < their_request:
            # We are requesting with higher priority (smaller timestamp).
            defer = True
        if defer:
            self.deferred.add(message.origin)
        else:
            self.send(message.origin, RAReply(origin=self.node_id))

    def _on_reply(self, sender: int, message: RAReply) -> None:
        if message.origin not in self.awaiting_reply:
            raise ProtocolError(
                f"node {self.node_id} received an unexpected REPLY from {message.origin}"
            )
        self.awaiting_reply.discard(message.origin)
        if self.requesting and not self.awaiting_reply:
            self._enter_critical_section()


@registry.register
class RicartAgrawalaSystem(MutexSystem):
    """Ricart–Agrawala's algorithm on a fully connected logical network."""

    algorithm_name = "ricart-agrawala"
    uses_topology_edges = False
    dense_message_traffic = True
    #: 2(N-1) messages per entry bounds the interesting size range like
    #: Lamport's scheme.
    max_recommended_nodes = 1_000
    storage_class = "linear"
    token_based = False
    storage_description = (
        "per node: logical clock, pending-reply set, deferred-reply set "
        "(each up to N - 1 entries)"
    )

    def _create_nodes(self) -> Dict[int, RicartAgrawalaNode]:
        return {
            node_id: RicartAgrawalaNode(
                node_id,
                self.network,
                all_nodes=self.topology.nodes,
                metrics=self.metrics,
                trace=self.trace if self.trace.enabled else None,
                on_enter=self._on_enter,
            )
            for node_id in self.topology.nodes
        }
