"""Centralized coordinator algorithm.

This is the reference point of the paper's Chapter 6: one node acts as the
coordinator; everyone else sends it a ``REQUEST``, receives a ``GRANT`` when
the resource is free, and sends a ``RELEASE`` when done — three messages per
critical-section entry for a non-coordinator node, zero for the coordinator,
and a synchronization delay of two messages (RELEASE followed by GRANT).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional

from repro.baselines.base import MutexNodeBase, MutexSystem, registry
from repro.exceptions import ProtocolError


@dataclass(frozen=True)
class CentralRequest:
    """Request for the critical section, sent to the coordinator."""

    origin: int

    type_name = "REQUEST"

    def payload_size(self) -> int:
        return 1

    def describe(self) -> str:
        return f"REQUEST(origin={self.origin})"


@dataclass(frozen=True)
class CentralGrant:
    """Permission to enter, sent by the coordinator."""

    type_name = "GRANT"

    def payload_size(self) -> int:
        return 0

    def describe(self) -> str:
        return "GRANT"


@dataclass(frozen=True)
class CentralRelease:
    """Notification that the critical section was released."""

    origin: int

    type_name = "RELEASE"

    def payload_size(self) -> int:
        return 1

    def describe(self) -> str:
        return f"RELEASE(origin={self.origin})"


class CentralizedNode(MutexNodeBase):
    """A participant in the centralized scheme.

    The coordinator node also runs the coordinator logic (queue of pending
    requests, one grant outstanding at a time); requests it makes itself are
    handled locally without messages.
    """

    _MESSAGE_HANDLERS = {
        CentralRequest: "_on_request",
        CentralRelease: "_on_release",
        CentralGrant: "_on_grant",
    }

    def __init__(self, node_id: int, network, *, coordinator: int, **kwargs) -> None:
        super().__init__(node_id, network, **kwargs)
        self.coordinator = coordinator
        # Coordinator-only state.  The queue exists only on the coordinator:
        # the storage contract ("other nodes: coordinator identity only")
        # is also a real constraint at the 1M-node tier, where a deque per
        # node would be ~600 MB of empty queues.
        self.is_coordinator = node_id == coordinator
        self.resource_busy = False
        self.current_user: Optional[int] = None
        self.pending: Optional[Deque[int]] = deque() if self.is_coordinator else None

    # ------------------------------------------------------------------ #
    # participant behaviour
    # ------------------------------------------------------------------ #
    def request_cs(self) -> None:
        self._note_request()
        if self.is_coordinator:
            self._coordinator_handle_request(self.node_id)
        else:
            self.send(self.coordinator, CentralRequest(origin=self.node_id))

    def release_cs(self) -> None:
        self._note_exit()
        if self.is_coordinator:
            self._coordinator_handle_release(self.node_id)
        else:
            self.send(self.coordinator, CentralRelease(origin=self.node_id))

    def _on_request(self, sender: int, message: CentralRequest) -> None:
        self._require_coordinator(message)
        self._coordinator_handle_request(message.origin)

    def _on_release(self, sender: int, message: CentralRelease) -> None:
        self._require_coordinator(message)
        self._coordinator_handle_release(message.origin)

    def _on_grant(self, sender: int, message: CentralGrant) -> None:
        if not self.requesting:
            raise ProtocolError(
                f"node {self.node_id} received a GRANT without an outstanding request"
            )
        self._enter_critical_section()

    # ------------------------------------------------------------------ #
    # coordinator behaviour
    # ------------------------------------------------------------------ #
    def _coordinator_handle_request(self, origin: int) -> None:
        if self.resource_busy:
            self.pending.append(origin)
            return
        self._grant(origin)

    def _coordinator_handle_release(self, origin: int) -> None:
        if self.current_user != origin:
            raise ProtocolError(
                f"coordinator received RELEASE from {origin} but the resource is held "
                f"by {self.current_user}"
            )
        self.resource_busy = False
        self.current_user = None
        if self.pending:
            self._grant(self.pending.popleft())

    def _grant(self, origin: int) -> None:
        self.resource_busy = True
        self.current_user = origin
        if origin == self.node_id:
            self._enter_critical_section()
        else:
            self.send(origin, CentralGrant())

    def _require_coordinator(self, message: Any) -> None:
        if not self.is_coordinator:
            raise ProtocolError(
                f"non-coordinator node {self.node_id} received {message!r}"
            )


@registry.register
class CentralizedSystem(MutexSystem):
    """The centralized scheme; the topology's token holder is the coordinator."""

    algorithm_name = "centralized"
    uses_topology_edges = False
    dense_message_traffic = False
    #: O(1) scalars on every non-coordinator node; the coordinator's queue
    #: grows with the backlog, not with N.  Unbounded: runs at the 1M tier.
    max_recommended_nodes = None
    storage_class = "constant"
    token_based = False
    storage_description = (
        "coordinator: FIFO queue of pending requests + busy flag; "
        "other nodes: coordinator identity only"
    )

    def _create_nodes(self) -> Dict[int, CentralizedNode]:
        coordinator = self.topology.token_holder
        return {
            node_id: CentralizedNode(
                node_id,
                self.network,
                coordinator=coordinator,
                metrics=self.metrics,
                trace=self.trace if self.trace.enabled else None,
                on_enter=self._on_enter,
            )
            for node_id in self.topology.nodes
        }
