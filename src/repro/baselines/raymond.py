"""Raymond's tree-based token algorithm (Section 2.7).

The logical structure is an (unrooted) tree; each node keeps a ``HOLDER``
pointer toward the token, a FIFO queue of neighbours (possibly including
itself) that want the token, a ``USING`` flag and an ``ASKED`` flag that
limits it to one outstanding request per queue head.  Requests travel up the
tree toward the holder and the PRIVILEGE travels back down the same path, so
an entry costs up to ``2 * D`` messages and the synchronization delay can be
as large as ``D`` — the two numbers the paper improves on.

This is the closest relative of the DAG algorithm and its most important
baseline: the DAG algorithm replaces Raymond's per-node queues with the single
``FOLLOW`` variable and cuts both the message bound (to ``D + 1``) and the
synchronization delay (to 1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.baselines.base import MutexNodeBase, MutexSystem, registry


@dataclass(frozen=True)
class RaymondRequest:
    """Hop-by-hop request sent toward the token holder."""

    origin: int

    type_name = "REQUEST"

    def payload_size(self) -> int:
        return 1

    def describe(self) -> str:
        return f"REQUEST(from={self.origin})"


@dataclass(frozen=True)
class RaymondPrivilege:
    """The token, passed one tree edge at a time."""

    type_name = "PRIVILEGE"

    def payload_size(self) -> int:
        return 0

    def describe(self) -> str:
        return "PRIVILEGE"


class RaymondNode(MutexNodeBase):
    """One participant of Raymond's algorithm."""

    _MESSAGE_HANDLERS = {
        RaymondRequest: "_on_request",
        RaymondPrivilege: "_on_privilege",
    }

    def __init__(
        self,
        node_id: int,
        network,
        *,
        holder: Optional[int],
        **kwargs,
    ) -> None:
        super().__init__(node_id, network, **kwargs)
        # HOLDER: the neighbour in the direction of the token, or ourselves
        # when we have it (None encodes "self" to mirror the DAG node's NEXT).
        self.holder: Optional[int] = holder
        self.using = False
        self.asked = False
        self.request_queue: Deque[int] = deque()

    # ------------------------------------------------------------------ #
    # requests and releases
    # ------------------------------------------------------------------ #
    def request_cs(self) -> None:
        self._note_request()
        self.request_queue.append(self.node_id)
        self._assign_privilege()
        self._make_request()

    def release_cs(self) -> None:
        self._note_exit()
        self.using = False
        self._assign_privilege()
        self._make_request()

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def _on_request(self, sender: int, message: RaymondRequest) -> None:
        self.request_queue.append(sender)
        self._assign_privilege()
        self._make_request()

    def _on_privilege(self, sender: int, message: RaymondPrivilege) -> None:
        self.holder = None  # the token is here now
        self.asked = False
        self._assign_privilege()
        self._make_request()

    # ------------------------------------------------------------------ #
    # the two procedures of Raymond's paper
    # ------------------------------------------------------------------ #
    def _assign_privilege(self) -> None:
        """Pass the token to (or use it for) the head of the request queue."""
        if self.holder is not None or self.using or not self.request_queue:
            return
        head = self.request_queue.popleft()
        self.asked = False
        if head == self.node_id:
            self.using = True
            self._enter_critical_section()
        else:
            self.holder = head
            self.send(head, RaymondPrivilege())

    def _make_request(self) -> None:
        """Forward one request toward the holder on behalf of the queue head."""
        if self.holder is None or self.using:
            return
        if not self.request_queue or self.asked:
            return
        self.asked = True
        self.send(self.holder, RaymondRequest(origin=self.node_id))


@registry.register
class RaymondSystem(MutexSystem):
    """Raymond's algorithm on the topology's tree."""

    algorithm_name = "raymond"
    uses_topology_edges = True
    dense_message_traffic = False
    #: O(D) messages scale fine, but the per-node FIFO deque (~600 bytes
    #: each even when empty) is the Section 6.4 storage cost that prices the
    #: algorithm out of the 1M tier; 100k is the largest tier it joins.
    max_recommended_nodes = 100_000
    storage_class = "queue"
    token_based = True
    storage_description = (
        "per node: HOLDER pointer, USING and ASKED flags, FIFO queue of "
        "neighbour requests (up to degree + 1 entries)"
    )

    def _create_nodes(self) -> Dict[int, RaymondNode]:
        pointers = self.topology.next_pointers()
        return {
            node_id: RaymondNode(
                node_id,
                self.network,
                holder=pointers[node_id],
                metrics=self.metrics,
                trace=self.trace if self.trace.enabled else None,
                on_enter=self._on_enter,
            )
            for node_id in self.topology.nodes
        }
