"""Carvalho and Roucairol's optimisation of Ricart–Agrawala (Section 2.3).

A node that has received a REPLY from some peer keeps that peer's implicit
permission until the peer requests again: repeated entries by the same node
then need no messages at all, and a new request only needs to be sent to the
peers whose permission has been lost.  The number of messages per entry
therefore ranges from 0 to ``2 * (N - 1)``.

The subtle case is a requesting node that holds a peer's cached permission and
then receives a higher-priority request from that peer: it must surrender the
permission (send a REPLY) *and* re-issue its own REQUEST to that peer, since
its original broadcast never included it.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.baselines.base import MutexNodeBase, MutexSystem, registry
from repro.baselines.ricart_agrawala import RARequest, RAReply

Timestamp = Tuple[int, int]


class CarvalhoRoucairolNode(MutexNodeBase):
    """One participant of the Carvalho–Roucairol algorithm."""

    _MESSAGE_HANDLERS = {RARequest: "_on_request", RAReply: "_on_reply"}

    def __init__(self, node_id: int, network, *, all_nodes, **kwargs) -> None:
        super().__init__(node_id, network, **kwargs)
        self.all_nodes = tuple(all_nodes)
        self.others = tuple(n for n in self.all_nodes if n != node_id)
        self.clock = 0
        self.my_request: Optional[Timestamp] = None
        # Peers whose permission we currently hold (REPLY received and not yet
        # surrendered by replying to a request of theirs).
        self.authorized: Set[int] = set()
        self.awaiting_reply: Set[int] = set()
        self.deferred: Set[int] = set()

    # ------------------------------------------------------------------ #
    # requests and releases
    # ------------------------------------------------------------------ #
    def request_cs(self) -> None:
        self._note_request()
        self.clock += 1
        self.my_request = (self.clock, self.node_id)
        missing = [other for other in self.others if other not in self.authorized]
        self.awaiting_reply = set(missing)
        for other in missing:
            self.send(other, RARequest(clock=self.my_request[0], origin=self.node_id))
        if not self.awaiting_reply:
            # All permissions are cached from earlier entries: free re-entry.
            self._enter_critical_section()

    def release_cs(self) -> None:
        self._note_exit()
        self.my_request = None
        deferred, self.deferred = self.deferred, set()
        for other in sorted(deferred):
            # Surrendering the permission: the peer now holds ours.
            self.authorized.discard(other)
            self.send(other, RAReply(origin=self.node_id))

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def _on_request(self, sender: int, message: RARequest) -> None:
        self.clock = max(self.clock, message.clock) + 1
        their_request = (message.clock, message.origin)
        if self.in_critical_section:
            self.deferred.add(message.origin)
            return
        if self.my_request is not None:
            if self.my_request < their_request:
                # Our outstanding request has priority: hold their reply.
                self.deferred.add(message.origin)
                return
            # Their request has priority.  Give up their cached permission (if
            # we held it) and make sure our own request reaches them, because
            # the broadcast at request time skipped authorized peers.
            must_rerequest = message.origin in self.authorized or (
                message.origin not in self.awaiting_reply
            )
            self.authorized.discard(message.origin)
            self.send(message.origin, RAReply(origin=self.node_id))
            if must_rerequest and message.origin not in self.awaiting_reply:
                self.awaiting_reply.add(message.origin)
                self.send(
                    message.origin,
                    RARequest(clock=self.my_request[0], origin=self.node_id),
                )
            return
        # Idle: reply immediately and surrender any cached permission.
        self.authorized.discard(message.origin)
        self.send(message.origin, RAReply(origin=self.node_id))

    def _on_reply(self, sender: int, message: RAReply) -> None:
        self.authorized.add(message.origin)
        self.awaiting_reply.discard(message.origin)
        if self.requesting and not self.awaiting_reply:
            self._enter_critical_section()


@registry.register
class CarvalhoRoucairolSystem(MutexSystem):
    """Carvalho–Roucairol's algorithm on a fully connected logical network."""

    algorithm_name = "carvalho-roucairol"
    uses_topology_edges = False
    dense_message_traffic = True
    #: Cached permissions help steady state, but worst case stays 2(N-1).
    max_recommended_nodes = 1_000
    storage_class = "linear"
    token_based = False
    storage_description = (
        "per node: logical clock, cached-permission set, pending-reply set, "
        "deferred-reply set (each up to N - 1 entries)"
    )

    def _create_nodes(self) -> Dict[int, CarvalhoRoucairolNode]:
        return {
            node_id: CarvalhoRoucairolNode(
                node_id,
                self.network,
                all_nodes=self.topology.nodes,
                metrics=self.metrics,
                trace=self.trace if self.trace.enabled else None,
                on_enter=self._on_enter,
            )
            for node_id in self.topology.nodes
        }
