"""Singhal's heuristically-aided token algorithm (Section 2.5).

Every node keeps a state vector ``SV`` (one of ``R``, ``E``, ``H``, ``N`` per
node) and a sequence-number vector ``SN``; the token carries its own pair of
vectors.  A requester sends its REQUEST only to the nodes its heuristic deems
likely to hold the token — those marked ``R`` — rather than to everyone, so
the message count per entry ranges from ``N/2``-ish at low load up to ``N``
under heavy demand (the paper's quoted upper bound).

The staircase initialisation (node ``i`` marks every lower-numbered node as
``R``) establishes the pairwise invariant that for any two nodes at least one
has the other in its request set, which together with the rule that a
*requesting* node forwards its own request to any newly discovered requester
guarantees liveness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.baselines.base import MutexNodeBase, MutexSystem, registry
from repro.exceptions import ProtocolError

# Node states tracked in the state vectors.
REQUESTING = "R"
EXECUTING = "E"
HOLDING = "H"
NONE = "N"


def _staircase_ranks(all_nodes, token_holder: int) -> Dict[int, int]:
    """Rank nodes starting at the token holder, then by ascending identifier.

    The holder gets rank 0; the classic formulation (token at node 1, ranks by
    node id) is the special case where the holder is the smallest identifier.
    """
    ordered = sorted(all_nodes)
    position = ordered.index(token_holder)
    rotated = ordered[position:] + ordered[:position]
    return {node: rank for rank, node in enumerate(rotated)}


@dataclass(frozen=True)
class SinghalRequest:
    """Token request carrying the requester's sequence number."""

    origin: int
    sequence: int

    type_name = "REQUEST"

    def payload_size(self) -> int:
        return 2

    def describe(self) -> str:
        return f"REQUEST(from={self.origin}, seq={self.sequence})"


@dataclass(frozen=True)
class SinghalPrivilege:
    """The token, carrying its own state and sequence vectors."""

    state_vector: Tuple[Tuple[int, str], ...]
    sequence_vector: Tuple[Tuple[int, int], ...]

    type_name = "PRIVILEGE"

    def payload_size(self) -> int:
        # One state entry and one integer per node.
        return 2 * len(self.sequence_vector)

    def describe(self) -> str:
        return "PRIVILEGE(token vectors)"


class SinghalNode(MutexNodeBase):
    """One participant of Singhal's algorithm."""

    _MESSAGE_HANDLERS = {
        SinghalRequest: "_on_request",
        SinghalPrivilege: "_on_privilege",
    }

    def __init__(
        self,
        node_id: int,
        network,
        *,
        all_nodes,
        token_holder: int,
        **kwargs,
    ) -> None:
        super().__init__(node_id, network, **kwargs)
        self.all_nodes = tuple(all_nodes)
        self.others = tuple(n for n in self.all_nodes if n != node_id)
        holds_token = node_id == token_holder
        # Staircase initialisation, generalised to an arbitrary initial token
        # holder: rank the nodes starting at the holder, and mark every
        # lower-ranked node as requesting.  Every node therefore has the
        # holder in its request set, and for any pair of nodes at least one
        # has the other in its set — Singhal's pairwise invariant.
        ranks = _staircase_ranks(self.all_nodes, token_holder)
        self.state_vector: Dict[int, str] = {
            other: (REQUESTING if ranks[other] < ranks[node_id] else NONE)
            for other in self.all_nodes
        }
        self.state_vector[node_id] = HOLDING if holds_token else NONE
        self.sequence_vector: Dict[int, int] = {other: 0 for other in self.all_nodes}
        self.has_token = holds_token
        self.token_state: Dict[int, str] = (
            {other: NONE for other in self.all_nodes} if holds_token else {}
        )
        self.token_sequence: Dict[int, int] = (
            {other: 0 for other in self.all_nodes} if holds_token else {}
        )

    # ------------------------------------------------------------------ #
    # requests and releases
    # ------------------------------------------------------------------ #
    def request_cs(self) -> None:
        self._note_request()
        if self.has_token:
            self.state_vector[self.node_id] = EXECUTING
            self._enter_critical_section()
            return
        self.state_vector[self.node_id] = REQUESTING
        self.sequence_vector[self.node_id] += 1
        sequence = self.sequence_vector[self.node_id]
        for other in self.others:
            if self.state_vector[other] == REQUESTING:
                self.send(other, SinghalRequest(origin=self.node_id, sequence=sequence))

    def release_cs(self) -> None:
        self._note_exit()
        self.state_vector[self.node_id] = NONE
        self.token_state[self.node_id] = NONE
        self.token_sequence[self.node_id] = self.sequence_vector[self.node_id]
        # Merge local knowledge with the token's knowledge, newest wins.
        for other in self.all_nodes:
            if self.sequence_vector[other] > self.token_sequence[other]:
                self.token_state[other] = self.state_vector[other]
                self.token_sequence[other] = self.sequence_vector[other]
            else:
                self.state_vector[other] = self.token_state[other]
                self.sequence_vector[other] = self.token_sequence[other]
        successor = self._pick_requester()
        if successor is None:
            self.state_vector[self.node_id] = HOLDING
        else:
            self._pass_token(successor)

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def _on_request(self, sender: int, message: SinghalRequest) -> None:
        origin, sequence = message.origin, message.sequence
        if sequence <= self.sequence_vector[origin]:
            # Outdated request: the token already satisfied it.
            return
        self.sequence_vector[origin] = sequence
        my_state = self.state_vector[self.node_id]
        previously_requesting = self.state_vector[origin] == REQUESTING
        self.state_vector[origin] = REQUESTING

        if my_state == NONE or my_state == EXECUTING:
            return
        if my_state == REQUESTING:
            # Forward our own request to the newly discovered requester: it may
            # be (or become) the token holder and our broadcast missed it.
            if not previously_requesting:
                self.send(
                    origin,
                    SinghalRequest(
                        origin=self.node_id,
                        sequence=self.sequence_vector[self.node_id],
                    ),
                )
            return
        if my_state == HOLDING:
            # Idle token holder: hand the token over immediately.
            self.state_vector[self.node_id] = NONE
            self.token_state[origin] = REQUESTING
            self.token_sequence[origin] = sequence
            self._pass_token(origin)
            return
        raise ProtocolError(f"node {self.node_id} has invalid state {my_state!r}")

    def _on_privilege(self, sender: int, message: SinghalPrivilege) -> None:
        if self.has_token:
            raise ProtocolError(f"node {self.node_id} received a duplicate token")
        if not self.requesting:
            raise ProtocolError(
                f"node {self.node_id} received the token without an outstanding request"
            )
        self.has_token = True
        self.token_state = dict(message.state_vector)
        self.token_sequence = dict(message.sequence_vector)
        self.state_vector[self.node_id] = EXECUTING
        self._enter_critical_section()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _pick_requester(self):
        """Pick the next requester round-robin starting after our own id."""
        ordered = sorted(self.all_nodes)
        position = ordered.index(self.node_id)
        rotated = ordered[position + 1 :] + ordered[:position]
        for candidate in rotated:
            if self.state_vector[candidate] == REQUESTING:
                return candidate
        return None

    def _pass_token(self, destination: int) -> None:
        self.has_token = False
        token = SinghalPrivilege(
            state_vector=tuple(sorted(self.token_state.items())),
            sequence_vector=tuple(sorted(self.token_sequence.items())),
        )
        self.token_state = {}
        self.token_sequence = {}
        self.send(destination, token)


@registry.register
class SinghalSystem(MutexSystem):
    """Singhal's heuristically-aided algorithm."""

    algorithm_name = "singhal"
    uses_topology_edges = False
    dense_message_traffic = True
    #: Heuristics trim the average, but state and sequence vectors are
    #: Theta(N) per node and the worst-case fan-out is N.
    max_recommended_nodes = 1_000
    storage_class = "linear"
    token_based = True
    storage_description = (
        "per node: state vector and sequence vector of size N; token: its own "
        "state and sequence vectors of size N"
    )

    def _create_nodes(self) -> Dict[int, SinghalNode]:
        holder = self.topology.token_holder
        return {
            node_id: SinghalNode(
                node_id,
                self.network,
                all_nodes=self.topology.nodes,
                token_holder=holder,
                metrics=self.metrics,
                trace=self.trace if self.trace.enabled else None,
                on_enter=self._on_enter,
            )
            for node_id in self.topology.nodes
        }
