"""Common interface shared by every mutual exclusion algorithm in the library.

Chapter 6 compares the DAG algorithm against seven published algorithms plus
a centralized coordinator.  To make those comparisons measured rather than
quoted, every algorithm — including the paper's own — is implemented behind
the same :class:`MutexSystem` interface on the same simulation substrate, so a
single experiment driver can replay an identical workload against each one and
read identical metrics off the collector.

A system is always constructed from a :class:`~repro.topology.Topology`.
Algorithms that ignore the logical structure (they assume a fully connected
logical network: Lamport, Ricart–Agrawala, Carvalho–Roucairol, Suzuki–Kasami,
Singhal, Maekawa, and the centralized scheme) use only the node set and the
initial token/coordinator location; the tree-structured algorithms (Raymond
and the DAG algorithm) also use the edges.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Type

from repro.exceptions import ExperimentError, ProtocolError
from repro.sim.engine import SimulationEngine
from repro.sim.latency import LatencyModel
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Network
from repro.sim.process import SimProcess
from repro.sim.trace import TraceRecorder
from repro.topology.base import Topology

EnterCallback = Callable[[int, float], None]

#: The vocabulary for :attr:`MutexSystem.storage_class` (Section 6.4's axis):
#: ``"constant"`` — O(1) scalars per node; ``"queue"`` — a bounded FIFO per
#: node (degree- or backlog-sized); ``"quorum"`` — Theta(sqrt(N)) committee
#: state per node; ``"linear"`` — Theta(N) arrays or sets per node.
STORAGE_CLASSES = ("constant", "queue", "quorum", "linear")


@dataclass(frozen=True)
class AlgorithmCapabilities:
    """Capability metadata one algorithm declares once on its system class.

    This is the single source the benchmark and sweep matrices consult for
    tier eligibility and the experiment driver consults for scheduler
    auto-selection — replacing the module-level name tuples and ``getattr``
    probes that used to encode the same facts in four different places.

    Attributes:
        name: the algorithm's registry name.
        dense_message_traffic: whether a request fans out to many peers at
            the same timestamp (broadcast/quorum schemes) — the regime where
            the bucket-ring scheduler beats the heap.
        max_recommended_nodes: the largest node count at which running the
            algorithm still measures the algorithm rather than its known
            asymptotic pathology (message or memory blow-up); ``None`` means
            unbounded.  Matrix tiers admit an algorithm to an ``n``-node
            cell iff ``max_recommended_nodes`` is ``None`` or ``>= n``.
        storage_class: per-node state growth class, one of
            :data:`STORAGE_CLASSES`.
        token_based: whether exclusion is carried by a circulating token
            (vs collected permissions).
        uses_topology_edges: whether the logical tree edges matter (vs only
            the node set).
        storage_description: the prose Section 6.4 description.
        node_backends: node-state backends the algorithm implements.  Every
            algorithm has ``"object"`` (the per-node-instance reference);
            algorithms with an array-native state add ``"compact"``.
    """

    name: str
    dense_message_traffic: bool
    max_recommended_nodes: Optional[int]
    storage_class: str
    token_based: bool
    uses_topology_edges: bool
    storage_description: str
    node_backends: tuple = ("object",)

    def supports_scale(self, n: int) -> bool:
        """Whether an ``n``-node cell is within the recommended range."""
        return self.max_recommended_nodes is None or n <= self.max_recommended_nodes


class MutexNodeBase(SimProcess):
    """Base class for one participant of any mutual exclusion algorithm.

    Subclasses implement :meth:`request_cs`, :meth:`release_cs` and the
    message handlers named in :attr:`_MESSAGE_HANDLERS`, and call
    :meth:`_enter_critical_section` when the algorithm's entry condition
    becomes true.  The shared bookkeeping here keeps metrics consistent
    across algorithms.

    Message dispatch is type-keyed: subclasses declare a class-level
    ``_MESSAGE_HANDLERS`` mapping message types to handler method names, and
    the shared :meth:`on_message` resolves the incoming message's exact type
    with one dict lookup instead of walking an ``isinstance`` chain.  Every
    handler receives ``(sender, message)``.
    """

    #: Map of message type -> handler method name, filled in by subclasses.
    _MESSAGE_HANDLERS: Dict[type, str] = {}

    def __init__(
        self,
        node_id: int,
        network: Network,
        *,
        metrics: Optional[MetricsCollector] = None,
        trace: Optional[TraceRecorder] = None,
        on_enter: Optional[EnterCallback] = None,
    ) -> None:
        super().__init__(node_id, network)
        self.in_critical_section = False
        self.requesting = False
        self.cs_entries = 0
        self._metrics = metrics
        self._trace = trace
        self._on_enter = on_enter
        self._dispatch = {
            message_type: getattr(self, handler_name)
            for message_type, handler_name in self._MESSAGE_HANDLERS.items()
        }
        # Let the network's unobserved fast path dispatch by type directly,
        # skipping the on_message frame (same table, same error fallback).
        network.register_dispatch_table(node_id, self._dispatch)

    # ------------------------------------------------------------------ #
    # interface
    # ------------------------------------------------------------------ #
    def request_cs(self) -> None:
        """Ask to enter the critical section."""
        raise NotImplementedError

    def release_cs(self) -> None:
        """Leave the critical section."""
        raise NotImplementedError

    def on_message(self, sender: int, message: Any) -> None:
        """Dispatch ``message`` to the handler registered for its type."""
        handler = self._dispatch.get(type(message))
        if handler is None:
            raise ProtocolError(
                f"node {self.node_id} received unexpected message {message!r}"
            )
        handler(sender, message)

    # ------------------------------------------------------------------ #
    # shared bookkeeping for subclasses
    # ------------------------------------------------------------------ #
    def _note_request(self) -> None:
        """Record the request with the metrics collector and guard re-entry."""
        if self.requesting:
            raise ProtocolError(f"node {self.node_id} already has an outstanding request")
        if self.in_critical_section:
            raise ProtocolError(f"node {self.node_id} is already in its critical section")
        self.requesting = True
        if self._metrics is not None:
            self._metrics.cs_requested(self.node_id, self.now)
        if self._trace is not None:
            self._trace.record(self.now, "cs_request", self.node_id)

    def _enter_critical_section(self) -> None:
        """Mark entry, notify metrics/trace and the driver callback."""
        self.requesting = False
        self.in_critical_section = True
        self.cs_entries += 1
        now = self.engine._now  # the `now` property frame costs at this rate
        if self._metrics is not None:
            self._metrics.cs_entered(self.node_id, now)
        if self._trace is not None:
            self._trace.record(now, "cs_enter", self.node_id)
        if self._on_enter is not None:
            self._on_enter(self.node_id, now)

    def _note_exit(self) -> None:
        """Mark exit with metrics/trace; subclasses then pass on permissions."""
        if not self.in_critical_section:
            raise ProtocolError(f"node {self.node_id} is not in its critical section")
        self.in_critical_section = False
        if self._metrics is not None:
            self._metrics.cs_exited(self.node_id, self.now)
        if self._trace is not None:
            self._trace.record(self.now, "cs_exit", self.node_id)


class MutexSystem(abc.ABC):
    """A complete mutual exclusion system: engine, network and all nodes.

    Subclasses override :meth:`_create_nodes` to instantiate their node type,
    and the class attributes describing the algorithm for reports.
    """

    #: Human-readable algorithm name used in comparison tables.
    algorithm_name: str = "abstract"
    #: Whether the algorithm uses the logical tree edges (vs only the node set).
    uses_topology_edges: bool = False
    #: Per-node storage description for the Section 6.4 comparison.
    storage_description: str = ""
    #: Whether the algorithm fans messages out to many peers per request
    #: (broadcast/quorum schemes), producing many same-timestamp deliveries.
    #: The scheduler auto-selection uses this: dense same-tick traffic is
    #: where the bucket-ring scheduler beats the heap; token-passing
    #: algorithms (this default) serialize events thinly over virtual time,
    #: where the heap's C-level pops win.
    dense_message_traffic: bool = False
    #: Largest node count the algorithm is worth running at (``None`` =
    #: unbounded).  See :class:`AlgorithmCapabilities.max_recommended_nodes`;
    #: the bench/sweep tier matrices read this through the registry.
    max_recommended_nodes: Optional[int] = None
    #: Per-node state growth class, one of :data:`STORAGE_CLASSES`.
    storage_class: str = "constant"
    #: Whether exclusion travels as a token (vs collected permissions).
    token_based: bool = False
    #: Node-state backends the algorithm implements.  ``"object"`` (one node
    #: instance per participant) is the always-available reference; systems
    #: with an array-native state declare ``("object", "compact")`` and
    #: honour a ``node_backend`` constructor keyword.
    node_backends: tuple = ("object",)

    def __init__(
        self,
        topology: Topology,
        *,
        latency: Optional[LatencyModel] = None,
        record_trace: bool = False,
        collect_metrics: bool = True,
        on_enter: Optional[EnterCallback] = None,
        network_factory: Optional[Type[Network]] = None,
    ) -> None:
        self.topology = topology
        self.engine = SimulationEngine()
        # ``collect_metrics=False`` leaves the network unobserved, enabling
        # its zero-overhead delivery fast path — the throughput benchmarks
        # run this way and read counts off the network and the nodes instead.
        self.metrics: Optional[MetricsCollector] = (
            MetricsCollector() if collect_metrics else None
        )
        self.trace = TraceRecorder(enabled=record_trace)
        # ``network_factory`` swaps the substrate under every algorithm
        # uniformly (fault-carrying specs pass FaultInjectingNetwork); a
        # subclassed network always takes the observed delivery path.
        network_class = network_factory if network_factory is not None else Network
        self.network = network_class(
            self.engine,
            latency=latency,
            metrics=self.metrics,
            trace=self.trace if record_trace else None,
        )
        self._on_enter = on_enter
        #: Which backend the nodes actually use ("object" unless a compact
        #: ``_create_nodes`` overrides it) and, on the compact backend, the
        #: column store itself — the driver and benchmarks probe these.
        self.node_backend = "object"
        self.compact_state = None
        self.nodes: Dict[int, MutexNodeBase] = self._create_nodes()

    # ------------------------------------------------------------------ #
    # construction hook
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _create_nodes(self) -> Dict[int, MutexNodeBase]:
        """Instantiate one node object per topology node."""

    # ------------------------------------------------------------------ #
    # driving
    # ------------------------------------------------------------------ #
    @property
    def node_ids(self) -> List[int]:
        """All node identifiers, in topology order."""
        return list(self.nodes)

    def node(self, node_id: int) -> MutexNodeBase:
        """The node object for ``node_id``."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ProtocolError(f"unknown node {node_id}") from None

    def request(self, node_id: int) -> None:
        """Issue a critical-section request at ``node_id``."""
        self.node(node_id).request_cs()

    def release(self, node_id: int) -> None:
        """Release the critical section at ``node_id``."""
        self.node(node_id).release_cs()

    def run(self, *, max_events: Optional[int] = None, until: Optional[float] = None) -> int:
        """Advance the simulation; returns the number of events processed."""
        return self.engine.run(max_events=max_events, until=until)

    def run_until_quiescent(self, *, max_events: int = 1_000_000) -> int:
        """Run until no events remain.

        Raises:
            ExperimentError: if the event budget is exhausted, which indicates
                a livelock in the algorithm under test.
        """
        processed = self.engine.run(max_events=max_events)
        if self.engine.pending_events > 0:
            raise ExperimentError(
                f"{self.algorithm_name}: simulation did not quiesce within "
                f"{max_events} events"
            )
        return processed

    def in_critical_section(self, node_id: int) -> bool:
        """Whether ``node_id`` is currently inside its critical section."""
        return self.node(node_id).in_critical_section

    def nodes_in_critical_section(self) -> List[int]:
        """All nodes currently inside their critical sections (should be ≤ 1)."""
        return sorted(
            node_id for node_id, node in self.nodes.items() if node.in_critical_section
        )

    def describe(self) -> str:
        """Short description used in comparison tables."""
        return f"{self.algorithm_name} (N={self.topology.size})"


class AlgorithmRegistry:
    """Registry mapping algorithm names to :class:`MutexSystem` subclasses.

    The comparison benchmarks iterate over the registry so that adding a new
    algorithm automatically includes it in every comparison.
    """

    def __init__(self) -> None:
        self._systems: Dict[str, Type[MutexSystem]] = {}

    def register(self, system_class: Type[MutexSystem]) -> Type[MutexSystem]:
        """Register a system class under its ``algorithm_name`` (decorator-friendly)."""
        name = system_class.algorithm_name
        if name in self._systems:
            raise ValueError(f"algorithm {name!r} is already registered")
        self._systems[name] = system_class
        return system_class

    def get(self, name: str) -> Type[MutexSystem]:
        """Look up a system class by algorithm name."""
        try:
            return self._systems[name]
        except KeyError:
            raise KeyError(
                f"unknown algorithm {name!r}; known: {sorted(self._systems)}"
            ) from None

    def names(self) -> List[str]:
        """All registered algorithm names, in registration order."""
        return list(self._systems)

    def items(self) -> List[tuple]:
        """(name, class) pairs in registration order."""
        return list(self._systems.items())

    def capabilities(self, name: str) -> AlgorithmCapabilities:
        """The capability metadata declared on ``name``'s system class."""
        system_class = self.get(name)
        if system_class.storage_class not in STORAGE_CLASSES:
            raise ValueError(
                f"algorithm {name!r} declares storage_class "
                f"{system_class.storage_class!r}; expected one of {STORAGE_CLASSES}"
            )
        return AlgorithmCapabilities(
            name=name,
            dense_message_traffic=system_class.dense_message_traffic,
            max_recommended_nodes=system_class.max_recommended_nodes,
            storage_class=system_class.storage_class,
            token_based=system_class.token_based,
            uses_topology_edges=system_class.uses_topology_edges,
            storage_description=system_class.storage_description,
            node_backends=tuple(system_class.node_backends),
        )

    def names_for_scale(self, n: int) -> List[str]:
        """Algorithms recommended at ``n`` nodes, in registration order.

        This is the query the tiered matrices use instead of hand-maintained
        eligibility tuples: an algorithm joins an ``n``-node tier iff its
        declared ``max_recommended_nodes`` admits it.
        """
        return [
            name
            for name in self._systems
            if self.capabilities(name).supports_scale(n)
        ]


#: The global registry populated by the modules in this package.
registry = AlgorithmRegistry()
