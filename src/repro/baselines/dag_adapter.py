"""Adapter exposing the paper's DAG algorithm through the baseline interface.

:class:`~repro.core.protocol.DagMutexProtocol` is the library's primary,
feature-rich entry point (invariant checking, implicit-queue inspection).  The
comparison experiments, however, iterate over :class:`~repro.baselines.base
.MutexSystem` implementations, so this adapter plugs the same
:class:`~repro.core.node.DagMutexNode` state machine into that interface.
:class:`DagMutexNode` already provides ``request_cs`` / ``release_cs`` /
``in_critical_section`` / ``requesting``, which is all the driver relies on.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import MutexSystem, registry
from repro.core.node import DagMutexNode


@registry.register
class DagSystem(MutexSystem):
    """The paper's DAG-based algorithm behind the common comparison interface."""

    algorithm_name = "dag"
    uses_topology_edges = True
    dense_message_traffic = False
    #: Three scalars per node: the paper's headline storage result.  Unbounded.
    max_recommended_nodes = None
    storage_class = "constant"
    token_based = True
    storage_description = (
        "per node: HOLDING flag, NEXT pointer, FOLLOW pointer (three scalars); "
        "token carries nothing"
    )

    def _create_nodes(self) -> Dict[int, DagMutexNode]:
        pointers = self.topology.next_pointers()
        return {
            node_id: DagMutexNode(
                node_id,
                self.network,
                holding=(node_id == self.topology.token_holder),
                next_node=pointers[node_id],
                metrics=self.metrics,
                trace=self.trace if self.trace.enabled else None,
                on_enter=self._on_enter,
            )
            for node_id in self.topology.nodes
        }
