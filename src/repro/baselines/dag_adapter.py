"""Adapter exposing the paper's DAG algorithm through the baseline interface.

:class:`~repro.core.protocol.DagMutexProtocol` is the library's primary,
feature-rich entry point (invariant checking, implicit-queue inspection).  The
comparison experiments, however, iterate over :class:`~repro.baselines.base
.MutexSystem` implementations, so this adapter plugs the same
:class:`~repro.core.node.DagMutexNode` state machine into that interface.
:class:`DagMutexNode` already provides ``request_cs`` / ``release_cs`` /
``in_critical_section`` / ``requesting``, which is all the driver relies on.

The DAG algorithm is the one system with two node backends:

* ``"object"`` — one :class:`DagMutexNode` instance per participant, the
  always-tested reference implementation;
* ``"compact"`` — the whole node population as flat array columns
  (:class:`~repro.core.compact_state.CompactDagState`), which is what makes
  the ten-million-node tier constructible in seconds within a few hundred
  megabytes.  ``system.nodes`` then serves lazy
  :class:`~repro.core.compact_state.DagNodeView` proxies, so code written
  against node objects keeps working unchanged.

``node_backend="auto"`` (the default) picks the columns at or above
:data:`~repro.core.compact_state.COMPACT_NODE_BACKEND_THRESHOLD` nodes.
Replays are byte-identical across backends — CI's ``backend-identity``
matrix enforces it.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import MutexSystem, registry
from repro.core.compact_state import (
    CompactDagState,
    CompactNodeMap,
    resolve_node_backend,
)
from repro.core.node import DagMutexNode


@registry.register
class DagSystem(MutexSystem):
    """The paper's DAG-based algorithm behind the common comparison interface."""

    algorithm_name = "dag"
    uses_topology_edges = True
    dense_message_traffic = False
    #: Three scalars per node: the paper's headline storage result.  Unbounded.
    max_recommended_nodes = None
    storage_class = "constant"
    token_based = True
    storage_description = (
        "per node: HOLDING flag, NEXT pointer, FOLLOW pointer (three scalars); "
        "token carries nothing"
    )
    node_backends = ("object", "compact")

    def __init__(self, topology, *, node_backend: str = "auto", **kwargs) -> None:
        # Resolved before super().__init__ because _create_nodes runs inside
        # it; len(topology.nodes) is O(1) for every built-in topology.
        self._resolved_backend = resolve_node_backend(
            node_backend, len(topology.nodes)
        )
        super().__init__(topology, **kwargs)

    def _create_nodes(self) -> Dict[int, DagMutexNode]:
        if self._resolved_backend == "compact":
            state = CompactDagState(
                self.topology,
                self.network,
                metrics=self.metrics,
                trace=self.trace if self.trace.enabled else None,
                on_enter=self._on_enter,
            )
            self.compact_state = state
            self.node_backend = "compact"
            self.network.attach_columnar(state)
            return CompactNodeMap(state)
        pointers = self.topology.next_pointers()
        return {
            node_id: DagMutexNode(
                node_id,
                self.network,
                holding=(node_id == self.topology.token_holder),
                next_node=pointers[node_id],
                metrics=self.metrics,
                trace=self.trace if self.trace.enabled else None,
                on_enter=self._on_enter,
            )
            for node_id in self.topology.nodes
        }
